//! Live tables: append ingestion with snapshot-isolated reads.
//!
//! Everything else in this crate assumes a table that is written once
//! and frozen. [`LiveTable`] is the mutable front of the store: an
//! HTAP-style split between an append-friendly write path and the
//! immutable, scan-optimized representation every reader already
//! understands.
//!
//! ```text
//!  appenders ──► memtable (active delta, ≤ 1 segment of rows)
//!                   │ full
//!                   ▼
//!              frozen delta (immutable in-memory Table) ──installed──► entries[i] = Mem
//!                   │ sealer (background thread or inline)
//!                   ▼
//!              segment file (write_table: checksummed pages) ──swap──► entries[i] = File
//!
//!  snapshot() ──► Snapshot { entries Arc-cloned, tail copied, bitmaps frozen }
//!                   = StorageBackend: executors / readers / service run unchanged
//! ```
//!
//! The pieces:
//!
//! * **Appends** ([`LiveTable::append_row`] / [`LiveTable::append_batch`])
//!   go into an in-memory delta (the `memtable` module, crate-internal)
//!   under one state mutex; concurrent appenders serialize there and
//!   nowhere else.
//!   Per-attribute presence bitmaps are maintained bit-by-bit in the
//!   same critical section, so snapshots never scan data to build their
//!   [`crate::bitmap::BitmapIndex`].
//! * **Sealing** — a delta that reaches `blocks_per_segment ×
//!   tuples_per_block` rows is *frozen* (installed immediately as an
//!   immutable in-memory segment, so no snapshot ever has a gap) and
//!   then *sealed*: written through the existing block-file writer
//!   ([`crate::file::write_table`] — same page format, position-keyed
//!   checksums) and re-opened as a [`crate::file::FileBackend`] that
//!   replaces the in-memory copy. Sealing runs on a background sealer
//!   thread by default ([`LiveTableConfig::background_sealer`]) or
//!   inline on the appender that filled the delta; a seal failure keeps
//!   the in-memory segment serving reads and is only *counted*
//!   ([`LiveStats::seal_errors`]) — durability degrades, correctness
//!   does not.
//!   Under backlog the sealer *coalesces* adjacent frozen deltas (up
//!   to [`LiveTableConfig::coalesce_segments`]) into one large
//!   sequential write, keeping persistence off the query path.
//! * **Ingest budgets** ([`LiveTableConfig::with_append_budget`]) bound
//!   appender throughput with a token bucket: over-budget appends
//!   sleep, releasing cores to concurrent queries — the software
//!   analogue of dedicating update-propagation resources in an HTAP
//!   design.
//! * **Snapshots** ([`LiveTable::snapshot`]) are the read contract: a
//!   sealed-segment watermark plus a frozen tail, implementing
//!   [`crate::backend::StorageBackend`] — see [`snapshot`].
//!
//! Block geometry invariant: sealed segments hold only *full* blocks,
//! so the global block id space is `segment-major` and a snapshot's
//! [`crate::block::BlockLayout`] is the ordinary "all blocks full except
//! possibly the last" shape every reader assumes.

pub(crate) mod memtable;
pub(crate) mod segment;
pub mod snapshot;

pub use snapshot::Snapshot;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::block::DEFAULT_TUPLES_PER_BLOCK;
use crate::error::{Result, StoreError};
use crate::live::memtable::{LiveBitmap, MemTable};
use crate::live::segment::{SegmentEntry, SegmentWriter};
use crate::schema::Schema;
use crate::table::Table;

/// Default sealed-segment size, in blocks (64 × the paper's 150-tuple
/// blocks = 9,600 rows per segment).
pub const DEFAULT_BLOCKS_PER_SEGMENT: usize = 64;

/// Default per-segment block-cache capacity, in pages. Deliberately far
/// below [`crate::file::DEFAULT_CACHE_BLOCKS`]: a live table accumulates
/// many `FileBackend`s, and their caches are additive.
pub const DEFAULT_SEGMENT_CACHE_BLOCKS: usize = 256;

/// Default cap on how many frozen deltas one sealed segment file may
/// coalesce (see [`LiveTableConfig::coalesce_segments`]).
pub const DEFAULT_COALESCE_SEGMENTS: usize = 4;

/// Builds the block-offset table of a snapshot from its per-segment
/// block counts: one start per segment plus a sentinel equal to the
/// total sealed block count, strictly increasing. Extracted so the
/// `live_lifecycle` model in `fastmatch-check` constructs watermarks
/// with exactly the arithmetic [`LiveTable::snapshot`] uses (invariant
/// `snapshot-is-prefix`).
pub fn build_seg_starts(seg_blocks: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut starts = vec![0usize];
    for blocks in seg_blocks {
        starts.push(starts.last().copied().unwrap_or(0) + blocks);
    }
    starts
}

/// In-memory bytes a snapshot pins beyond sealed files: `mem_rows`
/// rows of still-in-memory frozen segments it Arc-shares plus
/// `tail_rows` rows of its owned tail copy, `n_attrs` u32 columns
/// each. The charge taken at snapshot time must equal the release on
/// the pin's `Drop` — the `live_lifecycle` model's `pin-balance`
/// invariant — so both sides call this one function.
pub fn snapshot_pinned_bytes(mem_rows: usize, tail_rows: usize, n_attrs: usize) -> u64 {
    ((mem_rows + tail_rows) * n_attrs * std::mem::size_of::<u32>()) as u64
}

/// Construction parameters of a [`LiveTable`].
#[derive(Debug, Clone)]
pub struct LiveTableConfig {
    /// Block granularity (must match what queries expect).
    pub tuples_per_block: usize,
    /// Full blocks per sealed segment.
    pub blocks_per_segment: usize,
    /// Where sealed segment files go. `None` keeps every segment in
    /// memory (no persistence, no sealer thread) — the pure-HTAP-cache
    /// mode tests and short-lived sessions use. The directory must
    /// exist; files in it are owned by the caller (they are *not*
    /// removed when the table drops).
    pub segment_dir: Option<PathBuf>,
    /// Seal on a dedicated background thread (`true`, default) so
    /// appenders never block on disk I/O, or inline on the appender
    /// that filled the delta (`false`, deterministic — useful in tests).
    pub background_sealer: bool,
    /// Block-cache capacity of each re-opened segment backend.
    pub segment_cache_blocks: usize,
    /// Readahead workers of each re-opened segment backend. Default 0:
    /// per-segment worker pools multiply quickly; enable deliberately
    /// for storage-bound live workloads.
    pub segment_prefetch_workers: usize,
    /// Appender budget, in rows per second. `None` (default) leaves
    /// appends unthrottled; `Some(rate)` puts every append through a
    /// token bucket so a free-running writer cannot monopolize the box —
    /// the ingest half of HTAP resource isolation. Appends that exceed
    /// the budget *sleep* (releasing the CPU to queries) until the
    /// bucket refills; waits are surfaced through
    /// [`LiveStats::throttled_appends`] / [`LiveStats::throttle_wait_ns`].
    pub append_budget_rows_per_sec: Option<u64>,
    /// Cap on how many *adjacent* frozen deltas one seal may merge into
    /// a single segment file. Under backlog (deltas freezing faster than
    /// the sealer drains them) coalescing turns k small writes into one
    /// large sequential write, so the sealer steals fewer cycles from
    /// queries. `1` disables coalescing (one file per delta, the
    /// pre-coalescing behavior); must be ≥ 1.
    pub coalesce_segments: usize,
}

impl Default for LiveTableConfig {
    fn default() -> Self {
        LiveTableConfig {
            tuples_per_block: DEFAULT_TUPLES_PER_BLOCK,
            blocks_per_segment: DEFAULT_BLOCKS_PER_SEGMENT,
            segment_dir: None,
            background_sealer: true,
            segment_cache_blocks: DEFAULT_SEGMENT_CACHE_BLOCKS,
            segment_prefetch_workers: 0,
            append_budget_rows_per_sec: None,
            coalesce_segments: DEFAULT_COALESCE_SEGMENTS,
        }
    }
}

impl LiveTableConfig {
    /// Sets the block granularity.
    pub fn with_tuples_per_block(mut self, tpb: usize) -> Self {
        self.tuples_per_block = tpb;
        self
    }

    /// Sets the segment size in blocks.
    pub fn with_blocks_per_segment(mut self, blocks: usize) -> Self {
        self.blocks_per_segment = blocks;
        self
    }

    /// Enables persistence: sealed segments are written under `dir`.
    pub fn with_segment_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.segment_dir = Some(dir.into());
        self
    }

    /// Chooses between the background sealer thread (`true`) and inline
    /// sealing on the appender (`false`).
    pub fn with_background_sealer(mut self, background: bool) -> Self {
        self.background_sealer = background;
        self
    }

    /// Bounds appenders to `rows_per_sec` through a token bucket.
    pub fn with_append_budget(mut self, rows_per_sec: u64) -> Self {
        self.append_budget_rows_per_sec = Some(rows_per_sec);
        self
    }

    /// Sets the delta-coalescing cap (`1` disables coalescing).
    pub fn with_coalesce_segments(mut self, deltas: usize) -> Self {
        self.coalesce_segments = deltas;
        self
    }
}

/// Counters (and one gauge) describing a live table's life so far. All
/// fields except `pinned_snapshot_bytes` are monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Rows appended in total.
    pub rows: u64,
    /// Deltas frozen into immutable segments (either representation).
    pub frozen_segments: u64,
    /// Deltas persisted to disk and swapped to their file form. A
    /// coalesced seal persists several deltas with one write, so this
    /// can exceed the number of segment *files*.
    pub persisted_segments: u64,
    /// Deltas whose seal failed (the run kept serving from memory).
    pub seal_errors: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Deltas that were merged into multi-delta segment files (counts
    /// every member of a coalesced run; singleton seals don't count).
    pub coalesced_deltas: u64,
    /// Append calls that slept at least once in the token bucket.
    pub throttled_appends: u64,
    /// Total nanoseconds appenders spent sleeping in the token bucket.
    pub throttle_wait_ns: u64,
    /// Gauge: bytes of in-memory data (frozen-but-unsealed segments +
    /// tail copies) currently kept alive by outstanding snapshots. An
    /// upper bound on what snapshot retention costs beyond the table's
    /// own working set; falls as snapshots drop.
    pub pinned_snapshot_bytes: u64,
}

/// Shared core of one live table (append state + counters); the sealer
/// thread holds its own `Arc`.
#[derive(Debug)]
struct LiveInner {
    schema: Schema,
    tuples_per_block: usize,
    blocks_per_segment: usize,
    rows_per_segment: usize,
    coalesce_segments: usize,
    writer: Option<SegmentWriter>,
    budget: Option<Mutex<TokenBucket>>,
    state: Mutex<LiveState>,
    rows: AtomicU64,
    frozen: AtomicU64,
    persisted: AtomicU64,
    seal_errors: AtomicU64,
    snapshots: AtomicU64,
    coalesced: AtomicU64,
    throttled: AtomicU64,
    throttle_wait_ns: AtomicU64,
    /// Shared with [`snapshot::SnapshotPin`]s, which can outlive the
    /// table; hence the extra `Arc`.
    pinned: Arc<AtomicU64>,
}

/// Everything the append lock guards.
#[derive(Debug)]
struct LiveState {
    entries: Vec<LiveSegment>,
    mem: MemTable,
    bitmaps: Vec<LiveBitmap>,
    /// Rows covered by `entries`.
    sealed_rows: usize,
}

/// One sealed entry of the live table. Entries start life as single
/// frozen deltas; a coalescing seal replaces an adjacent run of them
/// with one file-backed entry spanning `deltas` deltas — so entries
/// have *variable* block counts and are keyed by their first delta id
/// (strictly increasing across the vector).
#[derive(Debug, Clone)]
struct LiveSegment {
    /// Id of the first frozen delta this entry covers (delta ids are
    /// assigned in freeze order and never reused); also names the
    /// segment file (`segment-{first_delta:06}.fmb`).
    first_delta: u64,
    /// Full blocks this entry spans (`deltas × blocks_per_segment`).
    blocks: usize,
    repr: SegmentEntry,
}

/// One frozen delta awaiting its seal.
struct SealJob {
    delta: u64,
    table: Arc<Table>,
}

/// Deficit-style token bucket bounding append throughput. A request is
/// granted whenever the balance is non-negative and then charged in
/// full (so one oversized batch may drive the balance negative); later
/// requests sleep until refill repays the debt. Sleeping — rather than
/// spinning or failing — is the point: it yields the core to queries.
#[derive(Debug)]
struct TokenBucket {
    /// Refill rate, rows per second.
    rate: f64,
    /// Balance cap: how many rows may burst after an idle stretch.
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rows_per_sec: u64) -> Self {
        let rate = rows_per_sec as f64;
        TokenBucket {
            rate,
            burst: (rate / 100.0).max(1024.0),
            tokens: 0.0,
            last: Instant::now(),
        }
    }

    /// Refills from elapsed time; returns `None` when `rows` was
    /// granted, else how long to sleep before retrying.
    fn grant(&mut self, rows: usize) -> Option<Duration> {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 0.0 {
            self.tokens -= rows as f64;
            None
        } else {
            // Sleep in bounded slices so wakeups track refill closely
            // even when the debt is large.
            Some(Duration::from_secs_f64(
                (-self.tokens / self.rate).clamp(1e-4, 0.05),
            ))
        }
    }
}

/// The background sealer, when configured.
#[derive(Debug)]
struct Sealer {
    tx: Option<Sender<SealJob>>,
    join: Option<JoinHandle<()>>,
}

/// An append-only table serving snapshot-isolated readers; see the
/// [module docs](self).
#[derive(Debug)]
pub struct LiveTable {
    inner: Arc<LiveInner>,
    sealer: Option<Sealer>,
}

impl LiveTable {
    /// Creates an empty live table.
    ///
    /// # Errors
    /// Rejects empty schemas, zero block/segment sizes and zero-sized
    /// segment caches as [`StoreError::Invalid`].
    pub fn new(schema: Schema, config: LiveTableConfig) -> Result<Self> {
        if schema.is_empty() {
            return Err(StoreError::Invalid("schema must have attributes".into()));
        }
        if config.tuples_per_block == 0 || config.blocks_per_segment == 0 {
            return Err(StoreError::Invalid(
                "block and segment sizes must be positive".into(),
            ));
        }
        if config.segment_cache_blocks == 0 {
            return Err(StoreError::Invalid("segment cache must be positive".into()));
        }
        if config.coalesce_segments == 0 {
            return Err(StoreError::Invalid(
                "coalesce_segments must be at least 1".into(),
            ));
        }
        if config.append_budget_rows_per_sec == Some(0) {
            return Err(StoreError::Invalid("append budget must be positive".into()));
        }
        let rows_per_segment = config
            .tuples_per_block
            .checked_mul(config.blocks_per_segment)
            .ok_or_else(|| StoreError::Invalid("segment size overflows".into()))?;
        let writer = config.segment_dir.as_ref().map(|dir| {
            SegmentWriter::new(
                dir.clone(),
                config.tuples_per_block,
                config.segment_cache_blocks,
                config.segment_prefetch_workers,
            )
        });
        let bitmaps = schema
            .attrs()
            .iter()
            .map(|a| LiveBitmap::new(a.cardinality))
            .collect();
        let n_attrs = schema.len();
        let inner = Arc::new(LiveInner {
            schema,
            tuples_per_block: config.tuples_per_block,
            blocks_per_segment: config.blocks_per_segment,
            rows_per_segment,
            coalesce_segments: config.coalesce_segments,
            writer,
            budget: config
                .append_budget_rows_per_sec
                .map(|rate| Mutex::new(TokenBucket::new(rate))),
            state: Mutex::new(LiveState {
                entries: Vec::new(),
                mem: MemTable::new(n_attrs, rows_per_segment),
                bitmaps,
                sealed_rows: 0,
            }),
            rows: AtomicU64::new(0),
            frozen: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            seal_errors: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            throttle_wait_ns: AtomicU64::new(0),
            pinned: Arc::new(AtomicU64::new(0)),
        });
        let sealer = (inner.writer.is_some() && config.background_sealer).then(|| {
            let (tx, rx) = channel::<SealJob>();
            let worker = Arc::clone(&inner);
            let join = std::thread::spawn(move || worker.sealer_loop(&rx));
            Sealer {
                tx: Some(tx),
                join: Some(join),
            }
        });
        Ok(LiveTable { inner, sealer })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Block granularity.
    pub fn tuples_per_block(&self) -> usize {
        self.inner.tuples_per_block
    }

    /// Rows per sealed segment.
    pub fn rows_per_segment(&self) -> usize {
        self.inner.rows_per_segment
    }

    /// Rows appended so far (a racy-but-monotone convenience; use
    /// [`Self::snapshot`] for a consistent view).
    pub fn n_rows(&self) -> u64 {
        self.inner.rows.load(Ordering::Relaxed)
    }

    /// Current counters.
    pub fn stats(&self) -> LiveStats {
        LiveStats {
            rows: self.inner.rows.load(Ordering::Relaxed),
            frozen_segments: self.inner.frozen.load(Ordering::Relaxed),
            persisted_segments: self.inner.persisted.load(Ordering::Relaxed),
            seal_errors: self.inner.seal_errors.load(Ordering::Relaxed),
            snapshots: self.inner.snapshots.load(Ordering::Relaxed),
            coalesced_deltas: self.inner.coalesced.load(Ordering::Relaxed),
            throttled_appends: self.inner.throttled.load(Ordering::Relaxed),
            throttle_wait_ns: self.inner.throttle_wait_ns.load(Ordering::Relaxed),
            pinned_snapshot_bytes: self.inner.pinned.load(Ordering::Relaxed),
        }
    }

    /// Appends one row (one code per attribute, in schema order).
    /// Returns the row's global index. Safe to call from many threads;
    /// rows interleave in lock-acquisition order.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on wrong arity or out-of-dictionary
    /// codes; nothing is appended.
    pub fn append_row(&self, row: &[u32]) -> Result<u64> {
        if row.len() != self.inner.schema.len() {
            return Err(StoreError::Invalid(format!(
                "row has {} codes, schema has {} attributes",
                row.len(),
                self.inner.schema.len()
            )));
        }
        let cols: Vec<&[u32]> = row.iter().map(std::slice::from_ref).collect();
        self.append_checked(&cols, 1).map(|r| r.start)
    }

    /// Appends a columnar batch (one code vector per attribute, equal
    /// lengths). Returns the global row range the batch occupies. The
    /// batch is appended *atomically in order*: its rows are contiguous
    /// in the append sequence even under concurrent appenders.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on wrong arity, ragged columns or
    /// out-of-dictionary codes; nothing is appended.
    pub fn append_batch(&self, columns: &[Vec<u32>]) -> Result<std::ops::Range<u64>> {
        if columns.len() != self.inner.schema.len() {
            return Err(StoreError::Invalid(format!(
                "batch has {} columns, schema has {} attributes",
                columns.len(),
                self.inner.schema.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != rows) {
            return Err(StoreError::Invalid("ragged batch columns".into()));
        }
        let cols: Vec<&[u32]> = columns.iter().map(|c| c.as_slice()).collect();
        self.append_checked(&cols, rows)
    }

    /// Shared append path: validates codes, then copies `rows` rows of
    /// `cols` into the delta under the state lock, freezing (and
    /// dispatching seals for) every delta that fills on the way.
    fn append_checked(&self, cols: &[&[u32]], rows: usize) -> Result<std::ops::Range<u64>> {
        for (a, col) in cols.iter().enumerate() {
            let card = self.inner.schema.attr(a).cardinality;
            if let Some(&bad) = col.iter().find(|&&v| v >= card) {
                return Err(StoreError::Invalid(format!(
                    "code {bad} out of dictionary for attribute {a} (cardinality {card})"
                )));
            }
        }
        let inner = &*self.inner;
        inner.throttle(rows);
        let tpb = inner.tuples_per_block;
        let mut frozen: Vec<SealJob> = Vec::new();
        let first = {
            let mut s = inner.state.lock().unwrap();
            let first = s.sealed_rows + s.mem.rows();
            let mut off = 0usize;
            while off < rows {
                let take = s.mem.room().min(rows - off);
                let base = s.sealed_rows + s.mem.rows();
                s.mem.extend(cols, off, take);
                for (a, col) in cols.iter().enumerate() {
                    let bm = &mut s.bitmaps[a];
                    for (i, &v) in col[off..off + take].iter().enumerate() {
                        bm.set(v, (base + i) / tpb);
                    }
                }
                off += take;
                if s.mem.room() == 0 {
                    let table = Arc::new(Table::new(inner.schema.clone(), s.mem.take_full()));
                    let delta = inner.frozen.fetch_add(1, Ordering::Relaxed);
                    s.entries.push(LiveSegment {
                        first_delta: delta,
                        blocks: inner.blocks_per_segment,
                        repr: SegmentEntry::Mem(Arc::clone(&table)),
                    });
                    s.sealed_rows += inner.rows_per_segment;
                    frozen.push(SealJob { delta, table });
                }
            }
            first
        };
        inner.rows.fetch_add(rows as u64, Ordering::Relaxed);
        // Persistence happens with the lock released: on the sealer
        // thread when one exists, else right here on the appender.
        if inner.writer.is_some() && !frozen.is_empty() {
            match &self.sealer {
                Some(Sealer { tx: Some(tx), .. }) => {
                    // A send can only fail after shutdown began, at
                    // which point the in-memory segment is the final
                    // (still fully readable) form.
                    for job in frozen {
                        let _ = tx.send(job);
                    }
                }
                _ => {
                    // Inline sealing coalesces too: deltas frozen by one
                    // append call are adjacent by construction.
                    let mut run = frozen.into_iter().peekable();
                    while run.peek().is_some() {
                        let chunk: Vec<SealJob> =
                            run.by_ref().take(inner.coalesce_segments).collect();
                        inner.seal_run(chunk);
                    }
                }
            }
        }
        Ok(first as u64..(first + rows) as u64)
    }

    /// Takes a consistent point-in-time snapshot; see
    /// [`snapshot::Snapshot`]. Cost is one tail copy (at most one
    /// segment of rows) plus one bitmap freeze per attribute — no data
    /// scan, no quiescing of writers.
    pub fn snapshot(&self) -> Snapshot {
        let inner = &*self.inner;
        let s = inner.state.lock().unwrap();
        let n_rows = s.sealed_rows + s.mem.rows();
        let num_blocks = n_rows.div_ceil(inner.tuples_per_block);
        let bitmaps = s
            .bitmaps
            .iter()
            .map(|bm| Arc::new(bm.freeze(num_blocks)))
            .collect();
        let seg_starts = build_seg_starts(s.entries.iter().map(|seg| seg.blocks));
        let mut entries = Vec::with_capacity(s.entries.len());
        let mut mem_rows = 0usize;
        for seg in &s.entries {
            if let SegmentEntry::Mem(t) = &seg.repr {
                mem_rows += t.n_rows();
            }
            entries.push(seg.repr.clone());
        }
        // Bytes this snapshot keeps alive beyond sealed files: frozen
        // in-memory segments (shared until the sealer swaps them — the
        // snapshot's Arc then pins the copy) plus its owned tail copy.
        let pinned_bytes = snapshot_pinned_bytes(mem_rows, s.mem.rows(), inner.schema.len());
        let snap = Snapshot {
            schema: inner.schema.clone(),
            tuples_per_block: inner.tuples_per_block,
            entries,
            seg_starts,
            sealed_rows: s.sealed_rows,
            tail: s.mem.columns().to_vec(),
            n_rows,
            bitmaps,
            pin: Arc::new(snapshot::SnapshotPin::new(
                pinned_bytes,
                Arc::clone(&inner.pinned),
            )),
        };
        drop(s);
        inner.snapshots.fetch_add(1, Ordering::Relaxed);
        snap
    }
}

impl LiveInner {
    /// Sleeps in the token bucket until `rows` more appended rows fit
    /// the configured budget. No-op without a budget.
    fn throttle(&self, rows: usize) {
        let Some(bucket) = &self.budget else { return };
        if rows == 0 {
            return;
        }
        let mut waited_ns = 0u64;
        loop {
            let wait = bucket.lock().unwrap().grant(rows);
            match wait {
                None => break,
                Some(d) => {
                    let t0 = Instant::now();
                    std::thread::sleep(d);
                    waited_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
        if waited_ns > 0 {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            self.throttle_wait_ns
                .fetch_add(waited_ns, Ordering::Relaxed);
        }
    }

    /// Background sealer body: drains jobs, opportunistically batching
    /// each with the adjacent deltas already queued behind it (up to
    /// `coalesce_segments`) so a backlog collapses into few large
    /// sequential writes. Runs until the channel hangs up *and* drains —
    /// mpsc delivers everything sent before the hangup.
    fn sealer_loop(&self, rx: &Receiver<SealJob>) {
        let mut pending: Option<SealJob> = None;
        loop {
            let first = match pending.take() {
                Some(job) => job,
                None => match rx.recv() {
                    Ok(job) => job,
                    Err(_) => break,
                },
            };
            let mut run = vec![first];
            while run.len() < self.coalesce_segments {
                match rx.try_recv() {
                    // Concurrent appenders may publish out of freeze
                    // order; only an exactly-adjacent delta extends the
                    // run, anything else starts the next one.
                    Ok(job) if job.delta == run.last().unwrap().delta + 1 => run.push(job),
                    Ok(job) => {
                        pending = Some(job);
                        break;
                    }
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            self.seal_run(run);
        }
    }

    /// Persists one run of adjacent frozen deltas as a single segment
    /// file and swaps their entries for one file-backed entry. Failures
    /// are counted, never propagated: the in-memory segments keep
    /// serving every snapshot correctly.
    fn seal_run(&self, jobs: Vec<SealJob>) {
        let writer = self.writer.as_ref().expect("seal without a segment dir");
        let first = jobs[0].delta;
        debug_assert!(jobs.windows(2).all(|w| w[1].delta == w[0].delta + 1));
        let merged;
        let table: &Table = if jobs.len() == 1 {
            &jobs[0].table
        } else {
            let total = jobs.len() * self.rows_per_segment;
            let mut cols: Vec<Vec<u32>> = (0..self.schema.len())
                .map(|_| Vec::with_capacity(total))
                .collect();
            for job in &jobs {
                for (a, col) in cols.iter_mut().enumerate() {
                    col.extend_from_slice(job.table.column(a));
                }
            }
            merged = Table::new(self.schema.clone(), cols);
            &merged
        };
        match writer.seal(first as usize, table) {
            Ok(backend) => {
                let k = jobs.len();
                let mut s = self.state.lock().unwrap();
                let pos = s.entries.partition_point(|e| e.first_delta < first);
                debug_assert!(
                    s.entries[pos].first_delta == first,
                    "sealed run must still be present as Mem entries"
                );
                let blocks: usize = s.entries[pos..pos + k].iter().map(|e| e.blocks).sum();
                s.entries.splice(
                    pos..pos + k,
                    [LiveSegment {
                        first_delta: first,
                        blocks,
                        repr: SegmentEntry::File(backend),
                    }],
                );
                drop(s);
                self.persisted.fetch_add(k as u64, Ordering::Relaxed);
                if k >= 2 {
                    self.coalesced.fetch_add(k as u64, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.seal_errors
                    .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for LiveTable {
    fn drop(&mut self) {
        if let Some(sealer) = &mut self.sealer {
            // Hang up the channel, then wait for in-flight seals so no
            // half-written segment file outlives the table.
            sealer.tx.take();
            if let Some(join) = sealer.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::schema::AttrDef;
    use crate::tempfile::TempBlockDir;

    fn schema() -> Schema {
        Schema::new(vec![AttrDef::new("z", 6), AttrDef::new("x", 4)])
    }

    fn cfg_mem(tpb: usize, bps: usize) -> LiveTableConfig {
        LiveTableConfig::default()
            .with_tuples_per_block(tpb)
            .with_blocks_per_segment(bps)
    }

    /// Rows whose two codes are derived from one counter, so torn rows
    /// are detectable.
    fn row_of(k: u64) -> [u32; 2] {
        [(k % 6) as u32, ((k * 7) % 4) as u32]
    }

    #[test]
    fn seg_starts_and_pin_arithmetic() {
        assert_eq!(build_seg_starts([]), vec![0]);
        assert_eq!(build_seg_starts([2, 2, 5]), vec![0, 2, 4, 9]);
        for (starts, b, want) in [
            (vec![0usize, 2, 4, 9], 0usize, 0usize),
            (vec![0, 2, 4, 9], 1, 0),
            (vec![0, 2, 4, 9], 2, 1),
            (vec![0, 2, 4, 9], 8, 2),
        ] {
            assert_eq!(snapshot::locate_segment(&starts, b), want);
        }
        // 10 rows × 2 attrs × 4 bytes, split any way between frozen
        // memory and tail.
        assert_eq!(snapshot_pinned_bytes(8, 2, 2), 80);
        assert_eq!(snapshot_pinned_bytes(0, 10, 2), 80);
    }

    #[test]
    fn appends_roll_into_segments_and_tail() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap(); // 8 rows/segment
        for k in 0..19u64 {
            let id = lt.append_row(&row_of(k)).unwrap();
            assert_eq!(id, k);
        }
        let st = lt.stats();
        assert_eq!(st.rows, 19);
        assert_eq!(st.frozen_segments, 2);
        assert_eq!(st.persisted_segments, 0, "no dir, nothing persists");
        let snap = lt.snapshot();
        assert_eq!(snap.n_rows(), 19);
        assert_eq!(snap.sealed_rows(), 16);
        assert_eq!(snap.tail_rows(), 3);
        assert_eq!(snap.layout().num_blocks(), 5);
        let t = snap.to_table().unwrap();
        for k in 0..19u64 {
            let want = row_of(k);
            assert_eq!(t.code(0, k as usize), want[0]);
            assert_eq!(t.code(1, k as usize), want[1]);
        }
    }

    #[test]
    fn batch_appends_are_contiguous_and_split_across_segments() {
        let lt = LiveTable::new(schema(), cfg_mem(3, 2)).unwrap(); // 6 rows/segment
        let ks: Vec<u64> = (0..14).collect();
        let cols = vec![
            ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
            ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
        ];
        let range = lt.append_batch(&cols).unwrap();
        assert_eq!(range, 0..14);
        assert_eq!(lt.stats().frozen_segments, 2);
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        assert_eq!(t.column(0), &cols[0][..]);
        assert_eq!(t.column(1), &cols[1][..]);
    }

    #[test]
    fn invalid_appends_are_rejected_without_side_effects() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap();
        assert!(matches!(lt.append_row(&[0]), Err(StoreError::Invalid(_))));
        assert!(matches!(
            lt.append_row(&[6, 0]), // z cardinality is 6
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            lt.append_batch(&[vec![0, 1], vec![0]]),
            Err(StoreError::Invalid(_))
        ));
        assert_eq!(lt.n_rows(), 0);
        assert_eq!(lt.snapshot().n_rows(), 0);
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        assert!(LiveTable::new(Schema::default(), cfg_mem(4, 2)).is_err());
        assert!(LiveTable::new(schema(), cfg_mem(0, 2)).is_err());
        assert!(LiveTable::new(schema(), cfg_mem(4, 0)).is_err());
    }

    #[test]
    fn snapshots_are_isolated_from_later_appends() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap();
        for k in 0..10u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let before = snap.to_table().unwrap();
        for k in 10..40u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        assert_eq!(snap.n_rows(), 10, "snapshot must not grow");
        assert_eq!(snap.to_table().unwrap(), before);
        assert_eq!(lt.snapshot().n_rows(), 40);
    }

    #[test]
    fn inline_sealing_persists_segments_and_preserves_reads() {
        let dir = TempBlockDir::new("live_inline");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..20u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 2);
        assert_eq!(st.persisted_segments, 2, "inline sealing is synchronous");
        assert_eq!(st.seal_errors, 0);
        assert!(dir.path().join("segment-000000.fmb").exists());
        assert!(dir.path().join("segment-000001.fmb").exists());
        let snap = lt.snapshot();
        assert_eq!(snap.num_segments(), 2);
        let t = snap.to_table().unwrap();
        for k in 0..20u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
        }
    }

    #[test]
    fn background_sealer_converts_segments_eventually() {
        let dir = TempBlockDir::new("live_bg");
        let cfg = cfg_mem(4, 2).with_segment_dir(dir.path());
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..17u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lt.stats().persisted_segments < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "sealer stalled: {:?}",
                lt.stats()
            );
            std::thread::yield_now();
        }
        // Reads after the Mem → File swap still see identical data.
        let t = lt.snapshot().to_table().unwrap();
        for k in 0..17u64 {
            assert_eq!(t.code(1, k as usize), row_of(k)[1]);
        }
    }

    #[test]
    fn drop_joins_the_sealer_after_finishing_queued_seals() {
        let dir = TempBlockDir::new("live_dropseal");
        // coalesce=1 keeps one file per delta, so the filenames the
        // joined sealer must have produced are deterministic.
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_coalesce_segments(1);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..16u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        drop(lt); // must join, not leak, the sealer thread
        assert!(dir.path().join("segment-000000.fmb").exists());
        assert!(dir.path().join("segment-000001.fmb").exists());
    }

    #[test]
    fn seal_failures_keep_serving_from_memory() {
        let dir = TempBlockDir::new("live_sealfail");
        let missing = dir.path().join("no-such-subdir");
        let cfg = cfg_mem(4, 1)
            .with_segment_dir(&missing)
            .with_background_sealer(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..9u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 2);
        assert_eq!(st.persisted_segments, 0);
        assert_eq!(st.seal_errors, 2);
        let t = lt.snapshot().to_table().unwrap();
        assert_eq!(t.n_rows(), 9);
        for k in 0..9u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
        }
    }

    #[test]
    fn inline_sealer_coalesces_adjacent_deltas_from_one_batch() {
        let dir = TempBlockDir::new("live_coalesce");
        // 4 rows per delta; a 40-row batch freezes 10 deltas in one
        // call, which the inline sealer groups into runs of ≤ 4.
        let cfg = cfg_mem(4, 1)
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_coalesce_segments(4);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let ks: Vec<u64> = (0..40).collect();
        let cols = vec![
            ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
            ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
        ];
        lt.append_batch(&cols).unwrap();
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 10);
        assert_eq!(st.persisted_segments, 10);
        assert_eq!(st.coalesced_deltas, 10, "runs of 4+4+2 all coalesce");
        assert_eq!(st.seal_errors, 0);
        // Files are named by their run's first delta id.
        for present in [0, 4, 8] {
            assert!(dir
                .path()
                .join(format!("segment-{present:06}.fmb"))
                .exists());
        }
        for absent in [1, 2, 3, 5, 6, 7, 9] {
            assert!(!dir.path().join(format!("segment-{absent:06}.fmb")).exists());
        }
        // Reads over the variable-size segments are unchanged, both
        // materialized and blockwise.
        let snap = lt.snapshot();
        assert_eq!(snap.num_segments(), 3);
        let t = snap.to_table().unwrap();
        assert_eq!(t.column(0), &cols[0][..]);
        assert_eq!(t.column(1), &cols[1][..]);
        let layout = snap.layout();
        let mut buf = Vec::new();
        for attr in 0..2 {
            for b in 0..layout.num_blocks() {
                snap.read_block_into(b, attr, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(attr)[layout.rows_of_block(b)]);
            }
        }
        snap.prefetch(0..layout.num_blocks());
    }

    #[test]
    fn background_sealer_coalesces_under_backlog_without_data_loss() {
        let dir = TempBlockDir::new("live_bg_coalesce");
        let cfg = cfg_mem(4, 1)
            .with_segment_dir(dir.path())
            .with_coalesce_segments(4);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let ks: Vec<u64> = (0..48).collect();
        let cols = vec![
            ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
            ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
        ];
        lt.append_batch(&cols).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lt.stats().persisted_segments < 12 {
            assert!(
                std::time::Instant::now() < deadline,
                "sealer stalled: {:?}",
                lt.stats()
            );
            std::thread::yield_now();
        }
        // Whether any runs coalesced depends on queue timing; the data
        // and the delta accounting must be exact either way.
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 12);
        assert_eq!(st.persisted_segments, 12);
        assert_eq!(st.seal_errors, 0);
        let t = lt.snapshot().to_table().unwrap();
        assert_eq!(t.column(0), &cols[0][..]);
        assert_eq!(t.column(1), &cols[1][..]);
    }

    #[test]
    fn append_budget_throttles_and_counts_waits() {
        // 20k rows/s with a 1,024-row burst: appending 8,192 rows must
        // sleep for roughly (8192 - burst - final deficit grant)/rate ≳
        // 0.25 s. Assert half that to stay robust on loaded CI.
        let cfg = cfg_mem(64, 4).with_append_budget(20_000);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let t0 = std::time::Instant::now();
        for chunk in 0..4u64 {
            let ks: Vec<u64> = (chunk * 2048..(chunk + 1) * 2048).collect();
            let cols = vec![
                ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
                ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
            ];
            lt.append_batch(&cols).unwrap();
        }
        let elapsed = t0.elapsed();
        let st = lt.stats();
        assert_eq!(st.rows, 8192);
        assert!(st.throttled_appends >= 1, "no append ever waited: {st:?}");
        assert!(st.throttle_wait_ns > 0);
        assert!(
            elapsed >= std::time::Duration::from_millis(125),
            "8192 rows at 20k rows/s finished in {elapsed:?}"
        );
    }

    #[test]
    fn zero_budget_and_zero_coalesce_are_rejected() {
        assert!(LiveTable::new(schema(), cfg_mem(4, 2).with_append_budget(0)).is_err());
        assert!(LiveTable::new(schema(), cfg_mem(4, 2).with_coalesce_segments(0)).is_err());
    }

    #[test]
    fn snapshots_pin_memory_bytes_until_dropped() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap(); // 8 rows/segment
        for k in 0..10u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        assert_eq!(lt.stats().pinned_snapshot_bytes, 0);
        // 8 rows frozen in memory + 2 tail rows, 2 attrs × 4 bytes.
        let snap = lt.snapshot();
        let want = 10 * 2 * 4;
        assert_eq!(snap.pinned_bytes(), want);
        assert_eq!(lt.stats().pinned_snapshot_bytes, want);
        // Clones share the pin: no double charge, released once.
        let clone = snap.clone();
        assert_eq!(lt.stats().pinned_snapshot_bytes, want);
        drop(snap);
        assert_eq!(lt.stats().pinned_snapshot_bytes, want);
        // A second snapshot adds its own charge.
        let snap2 = lt.snapshot();
        assert_eq!(
            lt.stats().pinned_snapshot_bytes,
            want + snap2.pinned_bytes()
        );
        drop(snap2);
        drop(clone);
        assert_eq!(lt.stats().pinned_snapshot_bytes, 0);
    }

    #[test]
    fn snapshot_bitmaps_match_a_scan_built_index() {
        let lt = LiveTable::new(schema(), cfg_mem(3, 2)).unwrap();
        for k in 0..25u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        let layout = snap.layout();
        for attr in 0..2 {
            let want = crate::bitmap::BitmapIndex::build(&t, attr, &layout);
            let got = snap.bitmap(attr);
            assert_eq!(got.num_blocks(), want.num_blocks());
            assert_eq!(got.num_values(), want.num_values());
            for v in 0..got.num_values() as u32 {
                for b in 0..layout.num_blocks() {
                    assert_eq!(
                        got.block_has(v, b),
                        want.block_has(v, b),
                        "attr {attr} v {v} b {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_snapshot_has_no_blocks() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap();
        let snap = lt.snapshot();
        assert_eq!(snap.n_rows(), 0);
        assert_eq!(snap.layout().num_blocks(), 0);
        assert_eq!(snap.to_table().unwrap().n_rows(), 0);
    }

    #[test]
    fn snapshot_reads_match_blockwise() {
        let dir = TempBlockDir::new("live_blockwise");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..21u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        let layout = snap.layout();
        let mut buf = Vec::new();
        for attr in 0..2 {
            for b in 0..layout.num_blocks() {
                snap.read_block_into(b, attr, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(attr)[layout.rows_of_block(b)]);
            }
        }
        // Prefetch over the whole range (file, mem and tail blocks) is
        // advisory and must not panic or misroute.
        snap.prefetch(0..layout.num_blocks() + 3);
    }

    #[test]
    fn concurrent_appenders_never_tear_rows() {
        let lt = LiveTable::new(schema(), cfg_mem(5, 2)).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let lt = &lt;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        lt.append_row(&row_of(w * 10_000 + i)).unwrap();
                    }
                });
            }
            // Snapshots race the appenders; every row they see must be
            // internally consistent.
            for _ in 0..20 {
                let t = lt.snapshot().to_table().unwrap();
                for r in 0..t.n_rows() {
                    let z = t.code(0, r) as u64;
                    let x = t.code(1, r);
                    // row_of(k): z = k % 6, x = (k*7) % 4. For every k
                    // with k % 6 == z there is exactly one x residue per
                    // (z mod 4 cycle); verify membership in the valid set.
                    let valid = (0..24u64)
                        .filter(|k| k % 6 == z)
                        .map(|k| ((k * 7) % 4) as u32)
                        .collect::<std::collections::HashSet<_>>();
                    assert!(valid.contains(&x), "torn row {r}: z={z} x={x}");
                }
            }
        });
        let final_t = lt.snapshot().to_table().unwrap();
        assert_eq!(final_t.n_rows(), 2000);
    }
}
