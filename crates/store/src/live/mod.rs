//! Live tables: append ingestion with snapshot-isolated reads.
//!
//! Everything else in this crate assumes a table that is written once
//! and frozen. [`LiveTable`] is the mutable front of the store: an
//! HTAP-style split between an append-friendly write path and the
//! immutable, scan-optimized representation every reader already
//! understands.
//!
//! ```text
//!  appenders ──► memtable (active delta, ≤ 1 segment of rows)
//!                   │ full
//!                   ▼
//!              frozen delta (immutable in-memory Table) ──installed──► entries[i] = Mem
//!                   │ sealer (background thread or inline)
//!                   ▼
//!              segment file (write_table: checksummed pages) ──swap──► entries[i] = File
//!
//!  snapshot() ──► Snapshot { entries Arc-cloned, tail copied, bitmaps frozen }
//!                   = StorageBackend: executors / readers / service run unchanged
//! ```
//!
//! The pieces:
//!
//! * **Appends** ([`LiveTable::append_row`] / [`LiveTable::append_batch`])
//!   go into an in-memory delta (the `memtable` module, crate-internal)
//!   under one state mutex; concurrent appenders serialize there and
//!   nowhere else.
//!   Per-attribute presence bitmaps are maintained bit-by-bit in the
//!   same critical section, so snapshots never scan data to build their
//!   [`crate::bitmap::BitmapIndex`].
//! * **Sealing** — a delta that reaches `blocks_per_segment ×
//!   tuples_per_block` rows is *frozen* (installed immediately as an
//!   immutable in-memory segment, so no snapshot ever has a gap) and
//!   then *sealed*: written through the existing block-file writer
//!   ([`crate::file::write_table`] — same page format, position-keyed
//!   checksums) and re-opened as a [`crate::file::FileBackend`] that
//!   replaces the in-memory copy. Sealing runs on a background sealer
//!   thread by default ([`LiveTableConfig::background_sealer`]) or
//!   inline on the appender that filled the delta; a seal failure keeps
//!   the in-memory segment serving reads and is only *counted*
//!   ([`LiveStats::seal_errors`]) — durability degrades, correctness
//!   does not.
//!   Under backlog the sealer *coalesces* adjacent frozen deltas (up
//!   to [`LiveTableConfig::coalesce_segments`]) into one large
//!   sequential write, keeping persistence off the query path.
//! * **Ingest budgets** ([`LiveTableConfig::with_append_budget`]) bound
//!   appender throughput with a token bucket: over-budget appends
//!   sleep, releasing cores to concurrent queries — the software
//!   analogue of dedicating update-propagation resources in an HTAP
//!   design.
//! * **Snapshots** ([`LiveTable::snapshot`]) are the read contract: a
//!   sealed-segment watermark plus a frozen tail, implementing
//!   [`crate::backend::StorageBackend`] — see [`snapshot`].
//!
//! Block geometry invariant: sealed segments hold only *full* blocks,
//! so the global block id space is `segment-major` and a snapshot's
//! [`crate::block::BlockLayout`] is the ordinary "all blocks full except
//! possibly the last" shape every reader assumes.

pub mod compact;
pub(crate) mod memtable;
pub(crate) mod segment;
pub mod snapshot;
pub mod wal;
pub mod zone;

pub use snapshot::Snapshot;
pub use zone::ZoneMap;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::backend::StorageBackend;
use crate::block::DEFAULT_TUPLES_PER_BLOCK;
use crate::error::{Result, StoreError};
use crate::file::{fsync_dir, FileBackend};
use crate::live::compact::{pick_compaction, CompactShared};
use crate::live::memtable::{LiveBitmap, MemTable};
use crate::live::segment::{SegmentEntry, SegmentWriter};
use crate::live::wal::{
    durable_prefix_rows, replay_split, rotation_base, WalWriter, DEFAULT_WAL_SYNC_EVERY, WAL_FILE,
};
use crate::live::zone::LiveZones;
use crate::schema::Schema;
use crate::table::Table;

/// Acquires a mutex, proceeding through poisoning: every structure
/// these locks guard is either repaired by counters staying monotone
/// or only read for immutable `Arc`s, so a panicked peer must degrade
/// service, not wedge it.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default sealed-segment size, in blocks (64 × the paper's 150-tuple
/// blocks = 9,600 rows per segment).
pub const DEFAULT_BLOCKS_PER_SEGMENT: usize = 64;

/// Default per-segment block-cache capacity, in pages. Deliberately far
/// below [`crate::file::DEFAULT_CACHE_BLOCKS`]: a live table accumulates
/// many `FileBackend`s, and their caches are additive.
pub const DEFAULT_SEGMENT_CACHE_BLOCKS: usize = 256;

/// Default cap on how many frozen deltas one sealed segment file may
/// coalesce (see [`LiveTableConfig::coalesce_segments`]).
pub const DEFAULT_COALESCE_SEGMENTS: usize = 4;

/// Builds the block-offset table of a snapshot from its per-segment
/// block counts: one start per segment plus a sentinel equal to the
/// total sealed block count, strictly increasing. Extracted so the
/// `live_lifecycle` model in `fastmatch-check` constructs watermarks
/// with exactly the arithmetic [`LiveTable::snapshot`] uses (invariant
/// `snapshot-is-prefix`).
pub fn build_seg_starts(seg_blocks: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut starts = vec![0usize];
    for blocks in seg_blocks {
        starts.push(starts.last().copied().unwrap_or(0) + blocks);
    }
    starts
}

/// In-memory bytes a snapshot pins beyond sealed files: `mem_rows`
/// rows of still-in-memory frozen segments it Arc-shares plus
/// `tail_rows` rows of its owned tail copy, `n_attrs` u32 columns
/// each. The charge taken at snapshot time must equal the release on
/// the pin's `Drop` — the `live_lifecycle` model's `pin-balance`
/// invariant — so both sides call this one function.
pub fn snapshot_pinned_bytes(mem_rows: usize, tail_rows: usize, n_attrs: usize) -> u64 {
    ((mem_rows + tail_rows) * n_attrs * std::mem::size_of::<u32>()) as u64
}

/// Construction parameters of a [`LiveTable`].
#[derive(Debug, Clone)]
pub struct LiveTableConfig {
    /// Block granularity (must match what queries expect).
    pub tuples_per_block: usize,
    /// Full blocks per sealed segment.
    pub blocks_per_segment: usize,
    /// Where sealed segment files go. `None` keeps every segment in
    /// memory (no persistence, no sealer thread) — the pure-HTAP-cache
    /// mode tests and short-lived sessions use. The directory must
    /// exist; files in it are owned by the caller (they are *not*
    /// removed when the table drops).
    pub segment_dir: Option<PathBuf>,
    /// Seal on a dedicated background thread (`true`, default) so
    /// appenders never block on disk I/O, or inline on the appender
    /// that filled the delta (`false`, deterministic — useful in tests).
    pub background_sealer: bool,
    /// Block-cache capacity of each re-opened segment backend.
    pub segment_cache_blocks: usize,
    /// Readahead workers of each re-opened segment backend. Default 0:
    /// per-segment worker pools multiply quickly; enable deliberately
    /// for storage-bound live workloads.
    pub segment_prefetch_workers: usize,
    /// Appender budget, in rows per second. `None` (default) leaves
    /// appends unthrottled; `Some(rate)` puts every append through a
    /// token bucket so a free-running writer cannot monopolize the box —
    /// the ingest half of HTAP resource isolation. Appends that exceed
    /// the budget *sleep* (releasing the CPU to queries) until the
    /// bucket refills; waits are surfaced through
    /// [`LiveStats::throttled_appends`] / [`LiveStats::throttle_wait_ns`].
    pub append_budget_rows_per_sec: Option<u64>,
    /// Cap on how many *adjacent* frozen deltas one seal may merge into
    /// a single segment file. Under backlog (deltas freezing faster than
    /// the sealer drains them) coalescing turns k small writes into one
    /// large sequential write, so the sealer steals fewer cycles from
    /// queries. `1` disables coalescing (one file per delta, the
    /// pre-coalescing behavior); must be ≥ 1.
    pub coalesce_segments: usize,
    /// Whether appends are write-ahead logged (requires a segment
    /// directory; ignored without one). Defaults to `true`: with the
    /// WAL, every group-fsynced append survives a crash and
    /// [`LiveTable::open`] replays the unsealed tail. Turning it off
    /// restores the pre-WAL behavior — rows past the last sealed
    /// segment die with the process.
    pub wal_enabled: bool,
    /// Group-fsync interval of the WAL, in records: `1` fsyncs every
    /// record (strictest), `n` after every `n`th, `0` never (the OS
    /// flushes). A crash can lose at most the unsynced suffix; it can
    /// never corrupt the durable prefix (see [`wal`]).
    pub wal_sync_every: usize,
    /// Segment-file compaction fan-in. `None` (default) never merges
    /// sealed files; `Some(n)` keeps the table at ≤ `n` segment files
    /// by merging adjacent runs of up to `n` small files into one (see
    /// [`compact`]). Must be ≥ 2; requires a segment directory. With a
    /// background sealer the merges run on a dedicated compactor
    /// thread; with an inline sealer they run inline after each seal.
    pub compact_fan_in: Option<usize>,
}

impl Default for LiveTableConfig {
    fn default() -> Self {
        LiveTableConfig {
            tuples_per_block: DEFAULT_TUPLES_PER_BLOCK,
            blocks_per_segment: DEFAULT_BLOCKS_PER_SEGMENT,
            segment_dir: None,
            background_sealer: true,
            segment_cache_blocks: DEFAULT_SEGMENT_CACHE_BLOCKS,
            segment_prefetch_workers: 0,
            append_budget_rows_per_sec: None,
            coalesce_segments: DEFAULT_COALESCE_SEGMENTS,
            wal_enabled: true,
            wal_sync_every: DEFAULT_WAL_SYNC_EVERY,
            compact_fan_in: None,
        }
    }
}

impl LiveTableConfig {
    /// Sets the block granularity.
    pub fn with_tuples_per_block(mut self, tpb: usize) -> Self {
        self.tuples_per_block = tpb;
        self
    }

    /// Sets the segment size in blocks.
    pub fn with_blocks_per_segment(mut self, blocks: usize) -> Self {
        self.blocks_per_segment = blocks;
        self
    }

    /// Enables persistence: sealed segments are written under `dir`.
    pub fn with_segment_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.segment_dir = Some(dir.into());
        self
    }

    /// Chooses between the background sealer thread (`true`) and inline
    /// sealing on the appender (`false`).
    pub fn with_background_sealer(mut self, background: bool) -> Self {
        self.background_sealer = background;
        self
    }

    /// Bounds appenders to `rows_per_sec` through a token bucket.
    pub fn with_append_budget(mut self, rows_per_sec: u64) -> Self {
        self.append_budget_rows_per_sec = Some(rows_per_sec);
        self
    }

    /// Sets the delta-coalescing cap (`1` disables coalescing).
    pub fn with_coalesce_segments(mut self, deltas: usize) -> Self {
        self.coalesce_segments = deltas;
        self
    }

    /// Enables or disables write-ahead logging of appends.
    pub fn with_wal(mut self, enabled: bool) -> Self {
        self.wal_enabled = enabled;
        self
    }

    /// Sets the WAL group-fsync interval, in records (`1` = every
    /// record, `0` = never).
    pub fn with_wal_sync_every(mut self, records: usize) -> Self {
        self.wal_sync_every = records;
        self
    }

    /// Enables segment-file compaction with the given fan-in (≥ 2).
    pub fn with_compaction(mut self, fan_in: usize) -> Self {
        self.compact_fan_in = Some(fan_in);
        self
    }
}

/// Counters (and one gauge) describing a live table's life so far. All
/// fields except `pinned_snapshot_bytes` are monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Rows appended in total.
    pub rows: u64,
    /// Deltas frozen into immutable segments (either representation).
    pub frozen_segments: u64,
    /// Deltas persisted to disk and swapped to their file form. A
    /// coalesced seal persists several deltas with one write, so this
    /// can exceed the number of segment *files*.
    pub persisted_segments: u64,
    /// Deltas whose seal failed (the run kept serving from memory).
    pub seal_errors: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Deltas that were merged into multi-delta segment files (counts
    /// every member of a coalesced run; singleton seals don't count).
    pub coalesced_deltas: u64,
    /// Append calls that slept at least once in the token bucket.
    pub throttled_appends: u64,
    /// Total nanoseconds appenders spent sleeping in the token bucket.
    pub throttle_wait_ns: u64,
    /// Gauge: bytes of in-memory data (frozen-but-unsealed segments +
    /// tail copies) currently kept alive by outstanding snapshots. An
    /// upper bound on what snapshot retention costs beyond the table's
    /// own working set; falls as snapshots drop.
    pub pinned_snapshot_bytes: u64,
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Fsyncs the WAL has issued (group syncs plus rotation syncs).
    pub wal_syncs: u64,
    /// WAL truncations performed (one per seal that rotated the log).
    pub wal_rotations: u64,
    /// WAL operations that failed (create, append, rotate, or an
    /// unusable log at recovery). The table keeps serving — durability
    /// degrades, correctness does not — mirroring `seal_errors`.
    pub wal_errors: u64,
    /// Rows [`LiveTable::open`] replayed from the WAL back into the
    /// table (rows already covered by recovered segment files are not
    /// counted — they were never lost).
    pub recovered_rows: u64,
    /// Wall-clock nanoseconds [`LiveTable::open`] spent scanning
    /// segment files, verifying checksums, rebuilding indexes and
    /// replaying the WAL.
    pub recovery_ns: u64,
    /// Segment files [`LiveTable::open`] rejected as torn or corrupt
    /// (checksum failure, bad geometry, or unreachable behind a gap).
    /// Their rows are re-served from the WAL where it covers them.
    pub recovered_torn_segments: u64,
    /// Compaction merges performed.
    pub compactions: u64,
    /// Segment files consumed by compaction merges (each merge turns
    /// ≥ 2 files into 1).
    pub compacted_segments: u64,
    /// Compaction attempts that failed (counted, never propagated: the
    /// uncompacted files keep serving).
    pub compact_errors: u64,
}

/// Shared core of one live table (append state + counters); the sealer
/// thread holds its own `Arc`.
#[derive(Debug)]
struct LiveInner {
    schema: Schema,
    tuples_per_block: usize,
    blocks_per_segment: usize,
    rows_per_segment: usize,
    coalesce_segments: usize,
    compact_fan_in: Option<usize>,
    writer: Option<SegmentWriter>,
    budget: Option<Mutex<TokenBucket>>,
    state: Mutex<LiveState>,
    /// The write-ahead log, when enabled and creatable. Locked *after*
    /// the state lock (appends log inside the state critical section so
    /// the log's order is the append order); never the other way.
    wal: Mutex<Option<WalWriter>>,
    /// Group-fsync interval rotation re-creates the log with.
    wal_sync_every: usize,
    /// Serializes compaction passes (the background thread against
    /// [`LiveTable::compact_now`]); acquired before the state lock is
    /// taken and released between passes.
    compact_gate: Mutex<()>,
    /// Wakeup channel to the compactor thread, when one runs.
    compact: Option<Arc<CompactShared>>,
    rows: AtomicU64,
    frozen: AtomicU64,
    persisted: AtomicU64,
    seal_errors: AtomicU64,
    snapshots: AtomicU64,
    coalesced: AtomicU64,
    throttled: AtomicU64,
    throttle_wait_ns: AtomicU64,
    wal_records: AtomicU64,
    wal_syncs: AtomicU64,
    wal_rotations: AtomicU64,
    wal_errors: AtomicU64,
    recovered_rows: AtomicU64,
    recovery_ns: AtomicU64,
    recovered_torn: AtomicU64,
    compactions: AtomicU64,
    compacted_segments: AtomicU64,
    compact_errors: AtomicU64,
    /// Shared with [`snapshot::SnapshotPin`]s, which can outlive the
    /// table; hence the extra `Arc`.
    pinned: Arc<AtomicU64>,
}

/// Everything the append lock guards.
#[derive(Debug)]
struct LiveState {
    entries: Vec<LiveSegment>,
    mem: MemTable,
    bitmaps: Vec<LiveBitmap>,
    /// Per-attribute per-block min/max/count bounds, maintained in the
    /// same critical section as `bitmaps` (see [`zone`]).
    zones: Vec<LiveZones>,
    /// Rows covered by `entries`.
    sealed_rows: usize,
}

/// One sealed entry of the live table. Entries start life as single
/// frozen deltas; a coalescing seal replaces an adjacent run of them
/// with one file-backed entry spanning `deltas` deltas — so entries
/// have *variable* block counts and are keyed by their first delta id
/// (strictly increasing across the vector).
#[derive(Debug, Clone)]
struct LiveSegment {
    /// Id of the first frozen delta this entry covers (delta ids are
    /// assigned in freeze order and never reused); also names the
    /// segment file (`segment-{first_delta:06}.fmb`).
    first_delta: u64,
    /// Full blocks this entry spans (`deltas × blocks_per_segment`).
    blocks: usize,
    repr: SegmentEntry,
}

/// One frozen delta awaiting its seal.
struct SealJob {
    delta: u64,
    table: Arc<Table>,
}

/// Deficit-style token bucket bounding append throughput. A request is
/// granted whenever the balance is non-negative and then charged in
/// full (so one oversized batch may drive the balance negative); later
/// requests sleep until refill repays the debt. Sleeping — rather than
/// spinning or failing — is the point: it yields the core to queries.
#[derive(Debug)]
struct TokenBucket {
    /// Refill rate, rows per second.
    rate: f64,
    /// Balance cap: how many rows may burst after an idle stretch.
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rows_per_sec: u64) -> Self {
        let rate = rows_per_sec as f64;
        TokenBucket {
            rate,
            burst: (rate / 100.0).max(1024.0),
            tokens: 0.0,
            last: Instant::now(),
        }
    }

    /// Refills from elapsed time; returns `None` when `rows` was
    /// granted, else how long to sleep before retrying.
    fn grant(&mut self, rows: usize) -> Option<Duration> {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 0.0 {
            self.tokens -= rows as f64;
            None
        } else {
            // Sleep in bounded slices so wakeups track refill closely
            // even when the debt is large.
            Some(Duration::from_secs_f64(
                (-self.tokens / self.rate).clamp(1e-4, 0.05),
            ))
        }
    }
}

/// The background sealer, when configured.
#[derive(Debug)]
struct Sealer {
    tx: Option<Sender<SealJob>>,
    join: Option<JoinHandle<()>>,
}

/// The background compactor, when configured.
#[derive(Debug)]
struct Compactor {
    shared: Arc<CompactShared>,
    join: Option<JoinHandle<()>>,
}

/// State the directory scan of [`LiveTable::open`] recovered, seeding
/// the shared constructor.
struct Recovered {
    entries: Vec<LiveSegment>,
    bitmaps: Vec<LiveBitmap>,
    zones: Vec<LiveZones>,
    sealed_rows: usize,
    /// Deltas the recovered entries cover (the next delta id).
    deltas: u64,
    torn_segments: u64,
}

impl Recovered {
    fn empty(schema: &Schema) -> Self {
        Recovered {
            entries: Vec::new(),
            bitmaps: schema
                .attrs()
                .iter()
                .map(|a| LiveBitmap::new(a.cardinality))
                .collect(),
            zones: schema.attrs().iter().map(|_| LiveZones::new()).collect(),
            sealed_rows: 0,
            deltas: 0,
            torn_segments: 0,
        }
    }
}

/// An append-only table serving snapshot-isolated readers; see the
/// [module docs](self).
#[derive(Debug)]
pub struct LiveTable {
    inner: Arc<LiveInner>,
    sealer: Option<Sealer>,
    compactor: Option<Compactor>,
}

impl LiveTable {
    /// Creates an empty live table.
    ///
    /// # Errors
    /// Rejects empty schemas, zero block/segment sizes, zero-sized
    /// segment caches and degenerate compaction fan-ins as
    /// [`StoreError::Invalid`].
    pub fn new(schema: Schema, config: LiveTableConfig) -> Result<Self> {
        validate_config(&schema, &config)?;
        Self::build(schema, config, None)
    }

    /// Re-opens a live table from its segment directory after a crash
    /// or clean shutdown: enumerates `segment-*.fmb` files in delta
    /// order, fully verifies each (header, schema, geometry and every
    /// page checksum — rebuilding the presence bitmaps and zone maps
    /// from the decoded codes), then replays the WAL tail into the
    /// memtable and resumes serving. Recovery never panics on damaged
    /// input:
    ///
    /// * a torn or corrupt segment file ends the recovered prefix —
    ///   it and every later file are counted in
    ///   [`LiveStats::recovered_torn_segments`] and their rows are
    ///   re-served from the WAL where its lag covers them;
    /// * stale files shadowed by a crashed compaction (first delta
    ///   below the recovered watermark) are swept, as are `*.tmp`
    ///   staging leftovers;
    /// * a torn WAL tail or an unusable WAL is counted in
    ///   [`LiveStats::wal_errors`] and the valid prefix is kept.
    ///
    /// Rows replayed and the time recovery took are reported through
    /// [`LiveStats::recovered_rows`] / [`LiveStats::recovery_ns`].
    ///
    /// # Errors
    /// Configuration errors as in [`Self::new`] (a segment directory is
    /// required here), plus I/O errors listing the directory. Damaged
    /// *contents* are recovered around, never propagated.
    pub fn open(schema: Schema, config: LiveTableConfig) -> Result<Self> {
        let t0 = Instant::now();
        let rows_per_segment = validate_config(&schema, &config)?;
        let Some(dir) = config.segment_dir.clone() else {
            return Err(StoreError::Invalid(
                "open() requires a segment directory".into(),
            ));
        };
        let scan = scan_segment_dir(&schema, &config, &dir, rows_per_segment)?;
        // Read the old log back *before* build() truncates it. A WAL
        // that exists but cannot be trusted (bad header) or that ends
        // torn is counted, never fatal.
        let wal_path = dir.join(WAL_FILE);
        let mut wal_faults = 0u64;
        let old_wal = if config.wal_enabled && wal_path.exists() {
            match wal::replay(&wal_path, schema.len()) {
                Ok(r) => {
                    if r.torn_tail {
                        wal_faults += 1;
                    }
                    Some(r)
                }
                Err(_) => {
                    wal_faults += 1;
                    None
                }
            }
        } else {
            // A stale log must not outlive a table that no longer
            // writes one: rows past its base would replay as garbage
            // on a later re-enable.
            if !config.wal_enabled {
                let _ = std::fs::remove_file(&wal_path);
            }
            None
        };
        let torn_segments = scan.torn_segments;
        let sealed = scan.sealed_rows as u64;
        let table = Self::build(schema, config, Some(scan))?;
        let inner = &*table.inner;
        inner
            .recovered_torn
            .fetch_add(torn_segments, Ordering::Relaxed);
        inner.wal_errors.fetch_add(wal_faults, Ordering::Relaxed);
        if let Some(r) = old_wal {
            if r.base_rows > sealed {
                // The lag did not cover how much the directory lost
                // (more than one trailing run torn): attaching the log
                // would leave a hole in the row order. Keep the sealed
                // prefix, count the loss.
                inner.wal_errors.fetch_add(1, Ordering::Relaxed);
            } else {
                let mut cursor = r.base_rows;
                for rec in &r.records {
                    let len = rec.first().map_or(0, |c| c.len()) as u64;
                    let (skip, take) = replay_split(cursor, len, sealed);
                    cursor += len;
                    if take == 0 {
                        continue;
                    }
                    let cols: Vec<&[u32]> = rec
                        .iter()
                        .map(|c| &c[skip as usize..(skip + take) as usize])
                        .collect();
                    if table.validate_codes(&cols).is_err() {
                        // Checksummed yet out-of-dictionary: the log
                        // belongs to a different schema generation.
                        inner.wal_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    // Replayed rows go through the normal append path —
                    // re-logged to the fresh WAL, re-frozen and
                    // re-sealed when they fill deltas — minus the
                    // throttle: recovery is not ingest.
                    table.append_inner(&cols, take as usize);
                    inner.recovered_rows.fetch_add(take, Ordering::Relaxed);
                }
                debug_assert_eq!(cursor, r.base_rows + r.rows, "replay walked every record");
            }
        }
        inner
            .recovery_ns
            .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(table)
    }

    /// Shared constructor behind [`Self::new`] (empty state) and
    /// [`Self::open`] (recovered state). Creates the fresh WAL — which
    /// truncates any previous log, so `open` replays first — and
    /// spawns the sealer and compactor threads.
    fn build(
        schema: Schema,
        config: LiveTableConfig,
        recovered: Option<Recovered>,
    ) -> Result<Self> {
        let rows_per_segment = config
            .tuples_per_block
            .checked_mul(config.blocks_per_segment)
            .ok_or_else(|| StoreError::Invalid("segment size overflows".into()))?;
        let rec = recovered.unwrap_or_else(|| Recovered::empty(&schema));
        let writer = config.segment_dir.as_ref().map(|dir| {
            SegmentWriter::new(
                dir.clone(),
                config.tuples_per_block,
                config.segment_cache_blocks,
                config.segment_prefetch_workers,
            )
        });
        let n_attrs = schema.len();
        let mut wal_errors = 0u64;
        let mut wal_syncs = 0u64;
        let wal = match (&config.segment_dir, config.wal_enabled) {
            (Some(dir), true) => {
                match WalWriter::create(
                    &dir.join(WAL_FILE),
                    rec.sealed_rows as u64,
                    n_attrs,
                    config.wal_sync_every,
                ) {
                    Ok(w) => {
                        wal_syncs = w.syncs();
                        Some(w)
                    }
                    Err(_) => {
                        // No log, degraded durability — same contract
                        // as a failed seal: counted, still serving.
                        wal_errors = 1;
                        None
                    }
                }
            }
            _ => None,
        };
        let compact_shared =
            (writer.is_some() && config.compact_fan_in.is_some() && config.background_sealer)
                .then(|| Arc::new(CompactShared::new()));
        let inner = Arc::new(LiveInner {
            schema,
            tuples_per_block: config.tuples_per_block,
            blocks_per_segment: config.blocks_per_segment,
            rows_per_segment,
            coalesce_segments: config.coalesce_segments,
            compact_fan_in: config.compact_fan_in,
            writer,
            budget: config
                .append_budget_rows_per_sec
                .map(|rate| Mutex::new(TokenBucket::new(rate))),
            state: Mutex::new(LiveState {
                entries: rec.entries,
                mem: MemTable::new(n_attrs, rows_per_segment),
                bitmaps: rec.bitmaps,
                zones: rec.zones,
                sealed_rows: rec.sealed_rows,
            }),
            wal: Mutex::new(wal),
            wal_sync_every: config.wal_sync_every,
            compact_gate: Mutex::new(()),
            compact: compact_shared,
            rows: AtomicU64::new(rec.sealed_rows as u64),
            frozen: AtomicU64::new(rec.deltas),
            persisted: AtomicU64::new(rec.deltas),
            seal_errors: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            throttle_wait_ns: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(wal_syncs),
            wal_rotations: AtomicU64::new(0),
            wal_errors: AtomicU64::new(wal_errors),
            recovered_rows: AtomicU64::new(0),
            recovery_ns: AtomicU64::new(0),
            recovered_torn: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compacted_segments: AtomicU64::new(0),
            compact_errors: AtomicU64::new(0),
            pinned: Arc::new(AtomicU64::new(0)),
        });
        let sealer = (inner.writer.is_some() && config.background_sealer).then(|| {
            let (tx, rx) = channel::<SealJob>();
            let worker = Arc::clone(&inner);
            let join = std::thread::spawn(move || worker.sealer_loop(&rx));
            Sealer {
                tx: Some(tx),
                join: Some(join),
            }
        });
        let compactor = inner.compact.as_ref().map(|shared| {
            let worker = Arc::clone(&inner);
            let on_duty = Arc::clone(shared);
            let join = std::thread::spawn(move || worker.compactor_loop(&on_duty));
            Compactor {
                shared: Arc::clone(shared),
                join: Some(join),
            }
        });
        Ok(LiveTable {
            inner,
            sealer,
            compactor,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Block granularity.
    pub fn tuples_per_block(&self) -> usize {
        self.inner.tuples_per_block
    }

    /// Rows per sealed segment.
    pub fn rows_per_segment(&self) -> usize {
        self.inner.rows_per_segment
    }

    /// Rows appended so far (a racy-but-monotone convenience; use
    /// [`Self::snapshot`] for a consistent view).
    pub fn n_rows(&self) -> u64 {
        self.inner.rows.load(Ordering::Relaxed)
    }

    /// Current counters.
    pub fn stats(&self) -> LiveStats {
        LiveStats {
            rows: self.inner.rows.load(Ordering::Relaxed),
            frozen_segments: self.inner.frozen.load(Ordering::Relaxed),
            persisted_segments: self.inner.persisted.load(Ordering::Relaxed),
            seal_errors: self.inner.seal_errors.load(Ordering::Relaxed),
            snapshots: self.inner.snapshots.load(Ordering::Relaxed),
            coalesced_deltas: self.inner.coalesced.load(Ordering::Relaxed),
            throttled_appends: self.inner.throttled.load(Ordering::Relaxed),
            throttle_wait_ns: self.inner.throttle_wait_ns.load(Ordering::Relaxed),
            pinned_snapshot_bytes: self.inner.pinned.load(Ordering::Relaxed),
            wal_records: self.inner.wal_records.load(Ordering::Relaxed),
            wal_syncs: self.inner.wal_syncs.load(Ordering::Relaxed),
            wal_rotations: self.inner.wal_rotations.load(Ordering::Relaxed),
            wal_errors: self.inner.wal_errors.load(Ordering::Relaxed),
            recovered_rows: self.inner.recovered_rows.load(Ordering::Relaxed),
            recovery_ns: self.inner.recovery_ns.load(Ordering::Relaxed),
            recovered_torn_segments: self.inner.recovered_torn.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            compacted_segments: self.inner.compacted_segments.load(Ordering::Relaxed),
            compact_errors: self.inner.compact_errors.load(Ordering::Relaxed),
        }
    }

    /// Sealed entries currently backed by a segment file. Compaction
    /// bounds this at the configured fan-in once the backlog drains.
    pub fn num_segment_files(&self) -> usize {
        let s = lock_unpoisoned(&self.inner.state);
        s.entries
            .iter()
            .filter(|e| matches!(e.repr, SegmentEntry::File(_)))
            .count()
    }

    /// Runs compaction synchronously until no merge is due; returns
    /// the number of merges performed. A no-op unless
    /// [`LiveTableConfig::compact_fan_in`] is configured. Safe to call
    /// concurrently with appenders, queriers and the background
    /// compactor — a gate mutex serializes passes.
    pub fn compact_now(&self) -> u64 {
        self.inner.compact_passes()
    }

    /// Appends one row (one code per attribute, in schema order).
    /// Returns the row's global index. Safe to call from many threads;
    /// rows interleave in lock-acquisition order.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on wrong arity or out-of-dictionary
    /// codes; nothing is appended.
    pub fn append_row(&self, row: &[u32]) -> Result<u64> {
        if row.len() != self.inner.schema.len() {
            return Err(StoreError::Invalid(format!(
                "row has {} codes, schema has {} attributes",
                row.len(),
                self.inner.schema.len()
            )));
        }
        let cols: Vec<&[u32]> = row.iter().map(std::slice::from_ref).collect();
        self.append_checked(&cols, 1).map(|r| r.start)
    }

    /// Appends a columnar batch (one code vector per attribute, equal
    /// lengths). Returns the global row range the batch occupies. The
    /// batch is appended *atomically in order*: its rows are contiguous
    /// in the append sequence even under concurrent appenders.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on wrong arity, ragged columns or
    /// out-of-dictionary codes; nothing is appended.
    pub fn append_batch(&self, columns: &[Vec<u32>]) -> Result<std::ops::Range<u64>> {
        if columns.len() != self.inner.schema.len() {
            return Err(StoreError::Invalid(format!(
                "batch has {} columns, schema has {} attributes",
                columns.len(),
                self.inner.schema.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != rows) {
            return Err(StoreError::Invalid("ragged batch columns".into()));
        }
        let cols: Vec<&[u32]> = columns.iter().map(|c| c.as_slice()).collect();
        self.append_checked(&cols, rows)
    }

    /// Rejects out-of-dictionary codes (used by the public appenders
    /// and by WAL replay — checksummed records can still belong to a
    /// different schema generation).
    fn validate_codes(&self, cols: &[&[u32]]) -> Result<()> {
        for (a, col) in cols.iter().enumerate() {
            let card = self.inner.schema.attr(a).cardinality;
            if let Some(&bad) = col.iter().find(|&&v| v >= card) {
                return Err(StoreError::Invalid(format!(
                    "code {bad} out of dictionary for attribute {a} (cardinality {card})"
                )));
            }
        }
        Ok(())
    }

    /// Shared append path: validates codes, pays the ingest budget,
    /// then applies the batch.
    fn append_checked(&self, cols: &[&[u32]], rows: usize) -> Result<std::ops::Range<u64>> {
        self.validate_codes(cols)?;
        self.inner.throttle(rows);
        Ok(self.append_inner(cols, rows))
    }

    /// Locked append body, shared by the public appenders and WAL
    /// replay: logs the batch to the WAL *first* (same critical
    /// section — the log's order is the append order), then copies
    /// `rows` rows of `cols` into the delta, maintaining bitmaps and
    /// zone maps and freezing (and dispatching seals for) every delta
    /// that fills on the way. Codes must be validated already.
    fn append_inner(&self, cols: &[&[u32]], rows: usize) -> std::ops::Range<u64> {
        let inner = &*self.inner;
        let tpb = inner.tuples_per_block;
        let mut frozen: Vec<SealJob> = Vec::new();
        let first = {
            let mut s = inner.state.lock().unwrap();
            inner.wal_log(cols, rows);
            let first = s.sealed_rows + s.mem.rows();
            let mut off = 0usize;
            while off < rows {
                let take = s.mem.room().min(rows - off);
                let base = s.sealed_rows + s.mem.rows();
                s.mem.extend(cols, off, take);
                {
                    let LiveState { bitmaps, zones, .. } = &mut *s;
                    for (a, col) in cols.iter().enumerate() {
                        let bm = &mut bitmaps[a];
                        let zs = &mut zones[a];
                        for (i, &v) in col[off..off + take].iter().enumerate() {
                            let b = (base + i) / tpb;
                            bm.set(v, b);
                            zs.note(b, v);
                        }
                    }
                }
                off += take;
                if s.mem.room() == 0 {
                    let table = Arc::new(Table::new(inner.schema.clone(), s.mem.take_full()));
                    let delta = inner.frozen.fetch_add(1, Ordering::Relaxed);
                    s.entries.push(LiveSegment {
                        first_delta: delta,
                        blocks: inner.blocks_per_segment,
                        repr: SegmentEntry::Mem(Arc::clone(&table)),
                    });
                    s.sealed_rows += inner.rows_per_segment;
                    frozen.push(SealJob { delta, table });
                }
            }
            first
        };
        inner.rows.fetch_add(rows as u64, Ordering::Relaxed);
        // Persistence happens with the lock released: on the sealer
        // thread when one exists, else right here on the appender.
        if inner.writer.is_some() && !frozen.is_empty() {
            match &self.sealer {
                Some(Sealer { tx: Some(tx), .. }) => {
                    // A send can only fail after shutdown began, at
                    // which point the in-memory segment is the final
                    // (still fully readable) form.
                    for job in frozen {
                        let _ = tx.send(job);
                    }
                }
                _ => {
                    // Inline sealing coalesces too: deltas frozen by one
                    // append call are adjacent by construction.
                    let mut run = frozen.into_iter().peekable();
                    while run.peek().is_some() {
                        let chunk: Vec<SealJob> =
                            run.by_ref().take(inner.coalesce_segments).collect();
                        inner.seal_run(chunk);
                    }
                }
            }
        }
        first as u64..(first + rows) as u64
    }

    /// Takes a consistent point-in-time snapshot; see
    /// [`snapshot::Snapshot`]. Cost is one tail copy (at most one
    /// segment of rows) plus one bitmap freeze per attribute — no data
    /// scan, no quiescing of writers.
    pub fn snapshot(&self) -> Snapshot {
        let inner = &*self.inner;
        let s = inner.state.lock().unwrap();
        let n_rows = s.sealed_rows + s.mem.rows();
        let num_blocks = n_rows.div_ceil(inner.tuples_per_block);
        let bitmaps = s
            .bitmaps
            .iter()
            .map(|bm| Arc::new(bm.freeze(num_blocks)))
            .collect();
        let zones = s
            .zones
            .iter()
            .map(|z| Arc::new(z.freeze(num_blocks)))
            .collect();
        let seg_starts = build_seg_starts(s.entries.iter().map(|seg| seg.blocks));
        let mut entries = Vec::with_capacity(s.entries.len());
        let mut mem_rows = 0usize;
        for seg in &s.entries {
            if let SegmentEntry::Mem(t) = &seg.repr {
                mem_rows += t.n_rows();
            }
            entries.push(seg.repr.clone());
        }
        // Bytes this snapshot keeps alive beyond sealed files: frozen
        // in-memory segments (shared until the sealer swaps them — the
        // snapshot's Arc then pins the copy) plus its owned tail copy.
        let pinned_bytes = snapshot_pinned_bytes(mem_rows, s.mem.rows(), inner.schema.len());
        let snap = Snapshot {
            schema: inner.schema.clone(),
            tuples_per_block: inner.tuples_per_block,
            entries,
            seg_starts,
            sealed_rows: s.sealed_rows,
            tail: s.mem.columns().to_vec(),
            n_rows,
            bitmaps,
            zones,
            pin: Arc::new(snapshot::SnapshotPin::new(
                pinned_bytes,
                Arc::clone(&inner.pinned),
            )),
        };
        drop(s);
        inner.snapshots.fetch_add(1, Ordering::Relaxed);
        snap
    }
}

impl LiveInner {
    /// Sleeps in the token bucket until `rows` more appended rows fit
    /// the configured budget. No-op without a budget.
    fn throttle(&self, rows: usize) {
        let Some(bucket) = &self.budget else { return };
        if rows == 0 {
            return;
        }
        let mut waited_ns = 0u64;
        loop {
            let wait = bucket.lock().unwrap().grant(rows);
            match wait {
                None => break,
                Some(d) => {
                    let t0 = Instant::now();
                    std::thread::sleep(d);
                    waited_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
        if waited_ns > 0 {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            self.throttle_wait_ns
                .fetch_add(waited_ns, Ordering::Relaxed);
        }
    }

    /// Background sealer body: drains jobs, opportunistically batching
    /// each with the adjacent deltas already queued behind it (up to
    /// `coalesce_segments`) so a backlog collapses into few large
    /// sequential writes. Runs until the channel hangs up *and* drains —
    /// mpsc delivers everything sent before the hangup.
    fn sealer_loop(&self, rx: &Receiver<SealJob>) {
        let mut pending: Option<SealJob> = None;
        loop {
            let first = match pending.take() {
                Some(job) => job,
                None => match rx.recv() {
                    Ok(job) => job,
                    Err(_) => break,
                },
            };
            let mut run = vec![first];
            while run.len() < self.coalesce_segments {
                match rx.try_recv() {
                    // Concurrent appenders may publish out of freeze
                    // order; only an exactly-adjacent delta extends the
                    // run, anything else starts the next one.
                    Ok(job) if job.delta == run.last().unwrap().delta + 1 => run.push(job),
                    Ok(job) => {
                        pending = Some(job);
                        break;
                    }
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            self.seal_run(run);
        }
    }

    /// Persists one run of adjacent frozen deltas as a single segment
    /// file and swaps their entries for one file-backed entry. Failures
    /// are counted, never propagated: the in-memory segments keep
    /// serving every snapshot correctly.
    fn seal_run(&self, jobs: Vec<SealJob>) {
        let writer = self.writer.as_ref().expect("seal without a segment dir");
        let first = jobs[0].delta;
        debug_assert!(jobs.windows(2).all(|w| w[1].delta == w[0].delta + 1));
        let merged;
        let table: &Table = if jobs.len() == 1 {
            &jobs[0].table
        } else {
            let total = jobs.len() * self.rows_per_segment;
            let mut cols: Vec<Vec<u32>> = (0..self.schema.len())
                .map(|_| Vec::with_capacity(total))
                .collect();
            for job in &jobs {
                for (a, col) in cols.iter_mut().enumerate() {
                    col.extend_from_slice(job.table.column(a));
                }
            }
            merged = Table::new(self.schema.clone(), cols);
            &merged
        };
        match writer.seal(first as usize, table) {
            Ok(backend) => {
                let k = jobs.len();
                let mut s = self.state.lock().unwrap();
                let pos = s.entries.partition_point(|e| e.first_delta < first);
                debug_assert!(
                    s.entries[pos].first_delta == first,
                    "sealed run must still be present as Mem entries"
                );
                let blocks: usize = s.entries[pos..pos + k].iter().map(|e| e.blocks).sum();
                let run_start: usize = s.entries[..pos].iter().map(|e| e.blocks).sum::<usize>()
                    * self.tuples_per_block;
                s.entries.splice(
                    pos..pos + k,
                    [LiveSegment {
                        first_delta: first,
                        blocks,
                        repr: SegmentEntry::File(backend),
                    }],
                );
                // The run is durable (atomic write + dir fsync): trim
                // the WAL while still holding the lock, so no append
                // can slip between the splice and the rotation.
                self.rotate_wal_after_seal(&s, pos, table, run_start);
                drop(s);
                self.persisted.fetch_add(k as u64, Ordering::Relaxed);
                if k >= 2 {
                    self.coalesced.fetch_add(k as u64, Ordering::Relaxed);
                }
                self.compact_after_seal();
            }
            Err(_) => {
                self.seal_errors
                    .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Logs one append batch to the WAL, if one is running. Called
    /// under the state lock; failures are counted, never propagated.
    fn wal_log(&self, cols: &[&[u32]], rows: usize) {
        if rows == 0 {
            return;
        }
        let mut wal = lock_unpoisoned(&self.wal);
        let Some(w) = wal.as_mut() else { return };
        let syncs_before = w.syncs();
        match w.append(cols, 0, rows) {
            Ok(()) => {
                self.wal_records.fetch_add(1, Ordering::Relaxed);
                self.wal_syncs
                    .fetch_add(w.syncs() - syncs_before, Ordering::Relaxed);
            }
            Err(_) => {
                self.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Truncates the WAL after a seal landed durably. `pos` indexes the
    /// just-spliced file entry (whose rows start at global row
    /// `run_start` and whose data is still at hand as `run_table`).
    /// The new base follows [`rotation_base`]'s one-run lag: the
    /// newest sealed run's rows stay in the log until the *next* seal,
    /// so a torn last segment file remains recoverable. Rotation is
    /// skipped — log intact, just longer — whenever the retained rows
    /// cannot all be reconstructed from memory: a seal-error hole
    /// below `run_start`, or file-backed entries after it.
    fn rotate_wal_after_seal(
        &self,
        s: &LiveState,
        pos: usize,
        run_table: &Table,
        run_start: usize,
    ) {
        let mut wal = lock_unpoisoned(&self.wal);
        let Some(w) = wal.as_mut() else { return };
        let durable = durable_prefix_rows(s.entries.iter().map(|e| {
            (
                e.blocks * self.tuples_per_block,
                matches!(e.repr, SegmentEntry::File(_)),
            )
        })) as u64;
        let new_base = rotation_base(w.base_rows(), durable, run_table.n_rows() as u64);
        if new_base <= w.base_rows() || new_base < run_start as u64 {
            return;
        }
        let n_attrs = self.schema.len();
        let mut records: Vec<Vec<&[u32]>> = Vec::new();
        let off = (new_base as usize) - run_start;
        if off < run_table.n_rows() {
            records.push((0..n_attrs).map(|a| &run_table.column(a)[off..]).collect());
        }
        for e in &s.entries[pos + 1..] {
            match &e.repr {
                SegmentEntry::Mem(t) => {
                    records.push((0..n_attrs).map(|a| t.column(a)).collect());
                }
                // A file past the durable prefix means an earlier seal
                // failed and left a hole; its in-memory rows are gone,
                // so the old log must stay whole.
                SegmentEntry::File(_) => return,
            }
        }
        records.push(s.mem.columns().iter().map(|c| c.as_slice()).collect());
        let path = w.path().to_path_buf();
        match WalWriter::rotate_to(&path, new_base, n_attrs, self.wal_sync_every, &records) {
            Ok(next) => {
                debug_assert_eq!(
                    next.base_rows() + next.rows(),
                    (s.sealed_rows + s.mem.rows()) as u64,
                    "rotated log must cover exactly the rows past its base"
                );
                self.wal_syncs.fetch_add(next.syncs(), Ordering::Relaxed);
                self.wal_rotations.fetch_add(1, Ordering::Relaxed);
                *w = next;
            }
            Err(_) => {
                // The old log is still complete at its path; durability
                // is unchanged, only truncation was missed.
                self.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Post-seal compaction hook: wake the compactor thread when one
    /// runs, else (inline sealer) compact right here.
    fn compact_after_seal(&self) {
        if self.compact_fan_in.is_none() {
            return;
        }
        match &self.compact {
            Some(shared) => shared.poke(),
            None => {
                self.compact_passes();
            }
        }
    }

    /// Body of the background compactor thread.
    fn compactor_loop(&self, shared: &CompactShared) {
        while shared.wait() {
            self.compact_passes();
        }
    }

    /// Runs compaction merges under the gate until none is due (or one
    /// fails); returns how many happened.
    fn compact_passes(&self) -> u64 {
        let _gate = lock_unpoisoned(&self.compact_gate);
        let mut merges = 0u64;
        while self.compact_once() {
            merges += 1;
        }
        merges
    }

    /// One compaction merge, if due: picks the cheapest adjacent run
    /// of segment files ([`pick_compaction`]), rewrites it as one file
    /// over the first member's name, swaps the run's entries for the
    /// merged one under the state lock, and unlinks the shadowed
    /// member files only after a directory fsync — see [`compact`] for
    /// the crash argument. Failures are counted, never propagated.
    fn compact_once(&self) -> bool {
        let (Some(fan_in), Some(writer)) = (self.compact_fan_in, self.writer.as_ref()) else {
            return false;
        };
        let members: Vec<LiveSegment> = {
            let s = lock_unpoisoned(&self.state);
            let files: Vec<Option<usize>> = s
                .entries
                .iter()
                .map(|e| match &e.repr {
                    SegmentEntry::File(_) => Some(e.blocks),
                    SegmentEntry::Mem(_) => None,
                })
                .collect();
            let Some(range) = pick_compaction(&files, fan_in) else {
                return false;
            };
            s.entries[range].to_vec()
        };
        match self.merge_members(writer, &members) {
            Ok(()) => {
                self.compactions.fetch_add(1, Ordering::Relaxed);
                self.compacted_segments
                    .fetch_add(members.len() as u64, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.compact_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// The merge itself: read every member block (lock released — the
    /// members are immutable), write the merged file atomically over
    /// the first member's name, then swap under the state lock after
    /// verifying the window is untouched. Snapshot `Arc`s keep the old
    /// backends (and their unlinked inodes) readable until they drop.
    fn merge_members(&self, writer: &SegmentWriter, members: &[LiveSegment]) -> Result<()> {
        let first = members[0].first_delta;
        let total_blocks: usize = members.iter().map(|m| m.blocks).sum();
        let mut cols: Vec<Vec<u32>> = (0..self.schema.len())
            .map(|_| Vec::with_capacity(total_blocks * self.tuples_per_block))
            .collect();
        let mut buf = Vec::new();
        for m in members {
            let SegmentEntry::File(be) = &m.repr else {
                return Err(StoreError::Invalid(
                    "compaction member is not file-backed".into(),
                ));
            };
            for (a, col) in cols.iter_mut().enumerate() {
                for b in 0..m.blocks {
                    be.read_block_into(b, a, &mut buf)?;
                    col.extend_from_slice(&buf);
                }
            }
        }
        let merged = Table::new(self.schema.clone(), cols);
        let backend = writer.seal(first as usize, &merged)?;
        let old_paths: Vec<PathBuf> = members[1..]
            .iter()
            .map(|m| writer.path_of(m.first_delta as usize))
            .collect();
        {
            let mut s = lock_unpoisoned(&self.state);
            let pos = s.entries.partition_point(|e| e.first_delta < first);
            let intact = s.entries.get(pos..pos + members.len()).is_some_and(|w| {
                w.iter().zip(members).all(|(e, m)| {
                    e.first_delta == m.first_delta
                        && e.blocks == m.blocks
                        && matches!(e.repr, SegmentEntry::File(_))
                })
            });
            if !intact {
                // Only another compactor could have touched these, and
                // the gate forbids that — treat it as a failed merge
                // rather than corrupting the entry order.
                return Err(StoreError::Invalid(
                    "compaction window changed underfoot".into(),
                ));
            }
            s.entries.splice(
                pos..pos + members.len(),
                [LiveSegment {
                    first_delta: first,
                    blocks: total_blocks,
                    repr: SegmentEntry::File(backend),
                }],
            );
        }
        // The swap is visible and the merged file durable (seal ends
        // with a dir fsync); only now may the shadowed members go.
        for p in &old_paths {
            let _ = std::fs::remove_file(p);
        }
        let _ = fsync_dir(writer.dir());
        Ok(())
    }
}

impl Drop for LiveTable {
    fn drop(&mut self) {
        if let Some(sealer) = &mut self.sealer {
            // Hang up the channel, then wait for in-flight seals so no
            // half-written segment file outlives the table.
            sealer.tx.take();
            if let Some(join) = sealer.join.take() {
                let _ = join.join();
            }
        }
        // After the sealer: seals poke the compactor, so this order
        // lets the last seal's merge run before shutdown is observed.
        if let Some(compactor) = &mut self.compactor {
            compactor.shared.shutdown();
            if let Some(join) = compactor.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Shared construction-time validation; returns the segment size in
/// rows.
fn validate_config(schema: &Schema, config: &LiveTableConfig) -> Result<usize> {
    if schema.is_empty() {
        return Err(StoreError::Invalid("schema must have attributes".into()));
    }
    if config.tuples_per_block == 0 || config.blocks_per_segment == 0 {
        return Err(StoreError::Invalid(
            "block and segment sizes must be positive".into(),
        ));
    }
    if config.segment_cache_blocks == 0 {
        return Err(StoreError::Invalid("segment cache must be positive".into()));
    }
    if config.coalesce_segments == 0 {
        return Err(StoreError::Invalid(
            "coalesce_segments must be at least 1".into(),
        ));
    }
    if config.append_budget_rows_per_sec == Some(0) {
        return Err(StoreError::Invalid("append budget must be positive".into()));
    }
    if let Some(fan_in) = config.compact_fan_in {
        if fan_in < 2 {
            return Err(StoreError::Invalid(
                "compaction fan-in must be at least 2".into(),
            ));
        }
        if config.segment_dir.is_none() {
            return Err(StoreError::Invalid(
                "compaction requires a segment directory".into(),
            ));
        }
    }
    config
        .tuples_per_block
        .checked_mul(config.blocks_per_segment)
        .ok_or_else(|| StoreError::Invalid("segment size overflows".into()))
}

/// Parses a segment file name (`segment-NNNNNN.fmb`) to its first
/// delta id.
fn segment_index(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("segment-")?.strip_suffix(".fmb")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Directory-scan half of [`LiveTable::open`]: walks segment files in
/// delta order, loading each fully-verified one into the recovered
/// state and stopping at the first torn/corrupt/unreachable file. See
/// `open`'s docs for the exact sweep rules.
fn scan_segment_dir(
    schema: &Schema,
    config: &LiveTableConfig,
    dir: &Path,
    rows_per_segment: usize,
) -> Result<Recovered> {
    let mut found: Vec<(usize, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            // Staging leftovers of a crashed atomic write: never
            // observable data, always safe to sweep.
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        if let Some(index) = segment_index(name) {
            found.push((index, entry.path()));
        }
    }
    found.sort();
    let mut rec = Recovered::empty(schema);
    let mut torn = 0u64;
    let mut expected = 0usize;
    let mut it = found.into_iter();
    while let Some((index, path)) = it.next() {
        if index < expected {
            // Shadowed by a merged file that already covers these
            // deltas — a compaction crashed between its rename and its
            // unlinks. Finish the unlink for it.
            let _ = std::fs::remove_file(&path);
            continue;
        }
        if index > expected {
            // A gap: this file and everything after it cannot be
            // placed contiguously in the row order; those rows are
            // only recoverable from the WAL.
            torn += 1 + it.count() as u64;
            break;
        }
        match load_segment(schema, config, index, &path, rows_per_segment, &mut rec) {
            Ok(deltas) => expected += deltas,
            Err(_) => {
                // Torn or corrupt: the recovered prefix ends here.
                torn += 1 + it.count() as u64;
                break;
            }
        }
    }
    rec.deltas = expected as u64;
    rec.torn_segments = torn;
    Ok(rec)
}

/// Opens and *fully verifies* one segment file — header, schema,
/// block geometry, whole-delta row count, and every page checksum (by
/// decoding every block) — then folds its codes into the recovered
/// bitmaps and zone maps and appends its entry. Returns how many
/// deltas the file covers. Any error means "treat as torn"; `rec` is
/// only touched once the whole file has verified.
fn load_segment(
    schema: &Schema,
    config: &LiveTableConfig,
    index: usize,
    path: &Path,
    rows_per_segment: usize,
    rec: &mut Recovered,
) -> Result<usize> {
    let be = FileBackend::open(path)?
        .with_cache_blocks(config.segment_cache_blocks)
        .with_prefetch_workers(config.segment_prefetch_workers);
    if be.schema() != schema {
        return Err(StoreError::Format(format!(
            "segment {index} schema does not match the table"
        )));
    }
    let tpb = config.tuples_per_block;
    if be.layout().tuples_per_block() != tpb {
        return Err(StoreError::Format(format!(
            "segment {index} block size does not match the table"
        )));
    }
    let n_rows = be.n_rows();
    if n_rows == 0 || n_rows % rows_per_segment != 0 {
        return Err(StoreError::Format(format!(
            "segment {index} holds {n_rows} rows, not a whole number of deltas"
        )));
    }
    let blocks = n_rows / tpb;
    let mut cols: Vec<Vec<u32>> = Vec::with_capacity(schema.len());
    let mut buf = Vec::new();
    for a in 0..schema.len() {
        let card = schema.attr(a).cardinality;
        let mut col = Vec::with_capacity(n_rows);
        for b in 0..blocks {
            be.read_block_into(b, a, &mut buf)?;
            if let Some(&bad) = buf.iter().find(|&&v| v >= card) {
                return Err(StoreError::Format(format!(
                    "segment {index} code {bad} out of dictionary for attribute {a}"
                )));
            }
            col.extend_from_slice(&buf);
        }
        cols.push(col);
    }
    // Everything verified; fold into the live indexes.
    let base_block = rec.sealed_rows / tpb;
    for (a, col) in cols.iter().enumerate() {
        let bm = &mut rec.bitmaps[a];
        let zs = &mut rec.zones[a];
        for (i, &v) in col.iter().enumerate() {
            let b = base_block + i / tpb;
            bm.set(v, b);
            zs.note(b, v);
        }
    }
    rec.entries.push(LiveSegment {
        first_delta: index as u64,
        blocks,
        repr: SegmentEntry::File(Arc::new(be)),
    });
    rec.sealed_rows += n_rows;
    Ok(blocks / config.blocks_per_segment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::schema::AttrDef;
    use crate::tempfile::TempBlockDir;

    fn schema() -> Schema {
        Schema::new(vec![AttrDef::new("z", 6), AttrDef::new("x", 4)])
    }

    fn cfg_mem(tpb: usize, bps: usize) -> LiveTableConfig {
        LiveTableConfig::default()
            .with_tuples_per_block(tpb)
            .with_blocks_per_segment(bps)
    }

    /// Rows whose two codes are derived from one counter, so torn rows
    /// are detectable.
    fn row_of(k: u64) -> [u32; 2] {
        [(k % 6) as u32, ((k * 7) % 4) as u32]
    }

    #[test]
    fn seg_starts_and_pin_arithmetic() {
        assert_eq!(build_seg_starts([]), vec![0]);
        assert_eq!(build_seg_starts([2, 2, 5]), vec![0, 2, 4, 9]);
        for (starts, b, want) in [
            (vec![0usize, 2, 4, 9], 0usize, 0usize),
            (vec![0, 2, 4, 9], 1, 0),
            (vec![0, 2, 4, 9], 2, 1),
            (vec![0, 2, 4, 9], 8, 2),
        ] {
            assert_eq!(snapshot::locate_segment(&starts, b), want);
        }
        // 10 rows × 2 attrs × 4 bytes, split any way between frozen
        // memory and tail.
        assert_eq!(snapshot_pinned_bytes(8, 2, 2), 80);
        assert_eq!(snapshot_pinned_bytes(0, 10, 2), 80);
    }

    #[test]
    fn appends_roll_into_segments_and_tail() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap(); // 8 rows/segment
        for k in 0..19u64 {
            let id = lt.append_row(&row_of(k)).unwrap();
            assert_eq!(id, k);
        }
        let st = lt.stats();
        assert_eq!(st.rows, 19);
        assert_eq!(st.frozen_segments, 2);
        assert_eq!(st.persisted_segments, 0, "no dir, nothing persists");
        let snap = lt.snapshot();
        assert_eq!(snap.n_rows(), 19);
        assert_eq!(snap.sealed_rows(), 16);
        assert_eq!(snap.tail_rows(), 3);
        assert_eq!(snap.layout().num_blocks(), 5);
        let t = snap.to_table().unwrap();
        for k in 0..19u64 {
            let want = row_of(k);
            assert_eq!(t.code(0, k as usize), want[0]);
            assert_eq!(t.code(1, k as usize), want[1]);
        }
    }

    #[test]
    fn batch_appends_are_contiguous_and_split_across_segments() {
        let lt = LiveTable::new(schema(), cfg_mem(3, 2)).unwrap(); // 6 rows/segment
        let ks: Vec<u64> = (0..14).collect();
        let cols = vec![
            ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
            ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
        ];
        let range = lt.append_batch(&cols).unwrap();
        assert_eq!(range, 0..14);
        assert_eq!(lt.stats().frozen_segments, 2);
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        assert_eq!(t.column(0), &cols[0][..]);
        assert_eq!(t.column(1), &cols[1][..]);
    }

    #[test]
    fn invalid_appends_are_rejected_without_side_effects() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap();
        assert!(matches!(lt.append_row(&[0]), Err(StoreError::Invalid(_))));
        assert!(matches!(
            lt.append_row(&[6, 0]), // z cardinality is 6
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            lt.append_batch(&[vec![0, 1], vec![0]]),
            Err(StoreError::Invalid(_))
        ));
        assert_eq!(lt.n_rows(), 0);
        assert_eq!(lt.snapshot().n_rows(), 0);
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        assert!(LiveTable::new(Schema::default(), cfg_mem(4, 2)).is_err());
        assert!(LiveTable::new(schema(), cfg_mem(0, 2)).is_err());
        assert!(LiveTable::new(schema(), cfg_mem(4, 0)).is_err());
    }

    #[test]
    fn snapshots_are_isolated_from_later_appends() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap();
        for k in 0..10u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let before = snap.to_table().unwrap();
        for k in 10..40u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        assert_eq!(snap.n_rows(), 10, "snapshot must not grow");
        assert_eq!(snap.to_table().unwrap(), before);
        assert_eq!(lt.snapshot().n_rows(), 40);
    }

    #[test]
    fn inline_sealing_persists_segments_and_preserves_reads() {
        let dir = TempBlockDir::new("live_inline");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..20u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 2);
        assert_eq!(st.persisted_segments, 2, "inline sealing is synchronous");
        assert_eq!(st.seal_errors, 0);
        assert!(dir.path().join("segment-000000.fmb").exists());
        assert!(dir.path().join("segment-000001.fmb").exists());
        let snap = lt.snapshot();
        assert_eq!(snap.num_segments(), 2);
        let t = snap.to_table().unwrap();
        for k in 0..20u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
        }
    }

    #[test]
    fn background_sealer_converts_segments_eventually() {
        let dir = TempBlockDir::new("live_bg");
        let cfg = cfg_mem(4, 2).with_segment_dir(dir.path());
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..17u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lt.stats().persisted_segments < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "sealer stalled: {:?}",
                lt.stats()
            );
            std::thread::yield_now();
        }
        // Reads after the Mem → File swap still see identical data.
        let t = lt.snapshot().to_table().unwrap();
        for k in 0..17u64 {
            assert_eq!(t.code(1, k as usize), row_of(k)[1]);
        }
    }

    #[test]
    fn drop_joins_the_sealer_after_finishing_queued_seals() {
        let dir = TempBlockDir::new("live_dropseal");
        // coalesce=1 keeps one file per delta, so the filenames the
        // joined sealer must have produced are deterministic.
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_coalesce_segments(1);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..16u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        drop(lt); // must join, not leak, the sealer thread
        assert!(dir.path().join("segment-000000.fmb").exists());
        assert!(dir.path().join("segment-000001.fmb").exists());
    }

    #[test]
    fn seal_failures_keep_serving_from_memory() {
        let dir = TempBlockDir::new("live_sealfail");
        let missing = dir.path().join("no-such-subdir");
        let cfg = cfg_mem(4, 1)
            .with_segment_dir(&missing)
            .with_background_sealer(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..9u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 2);
        assert_eq!(st.persisted_segments, 0);
        assert_eq!(st.seal_errors, 2);
        let t = lt.snapshot().to_table().unwrap();
        assert_eq!(t.n_rows(), 9);
        for k in 0..9u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
        }
    }

    #[test]
    fn inline_sealer_coalesces_adjacent_deltas_from_one_batch() {
        let dir = TempBlockDir::new("live_coalesce");
        // 4 rows per delta; a 40-row batch freezes 10 deltas in one
        // call, which the inline sealer groups into runs of ≤ 4.
        let cfg = cfg_mem(4, 1)
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_coalesce_segments(4);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let ks: Vec<u64> = (0..40).collect();
        let cols = vec![
            ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
            ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
        ];
        lt.append_batch(&cols).unwrap();
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 10);
        assert_eq!(st.persisted_segments, 10);
        assert_eq!(st.coalesced_deltas, 10, "runs of 4+4+2 all coalesce");
        assert_eq!(st.seal_errors, 0);
        // Files are named by their run's first delta id.
        for present in [0, 4, 8] {
            assert!(dir
                .path()
                .join(format!("segment-{present:06}.fmb"))
                .exists());
        }
        for absent in [1, 2, 3, 5, 6, 7, 9] {
            assert!(!dir.path().join(format!("segment-{absent:06}.fmb")).exists());
        }
        // Reads over the variable-size segments are unchanged, both
        // materialized and blockwise.
        let snap = lt.snapshot();
        assert_eq!(snap.num_segments(), 3);
        let t = snap.to_table().unwrap();
        assert_eq!(t.column(0), &cols[0][..]);
        assert_eq!(t.column(1), &cols[1][..]);
        let layout = snap.layout();
        let mut buf = Vec::new();
        for attr in 0..2 {
            for b in 0..layout.num_blocks() {
                snap.read_block_into(b, attr, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(attr)[layout.rows_of_block(b)]);
            }
        }
        snap.prefetch(0..layout.num_blocks());
    }

    #[test]
    fn background_sealer_coalesces_under_backlog_without_data_loss() {
        let dir = TempBlockDir::new("live_bg_coalesce");
        let cfg = cfg_mem(4, 1)
            .with_segment_dir(dir.path())
            .with_coalesce_segments(4);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let ks: Vec<u64> = (0..48).collect();
        let cols = vec![
            ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
            ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
        ];
        lt.append_batch(&cols).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lt.stats().persisted_segments < 12 {
            assert!(
                std::time::Instant::now() < deadline,
                "sealer stalled: {:?}",
                lt.stats()
            );
            std::thread::yield_now();
        }
        // Whether any runs coalesced depends on queue timing; the data
        // and the delta accounting must be exact either way.
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 12);
        assert_eq!(st.persisted_segments, 12);
        assert_eq!(st.seal_errors, 0);
        let t = lt.snapshot().to_table().unwrap();
        assert_eq!(t.column(0), &cols[0][..]);
        assert_eq!(t.column(1), &cols[1][..]);
    }

    #[test]
    fn append_budget_throttles_and_counts_waits() {
        // 20k rows/s with a 1,024-row burst: appending 8,192 rows must
        // sleep for roughly (8192 - burst - final deficit grant)/rate ≳
        // 0.25 s. Assert half that to stay robust on loaded CI.
        let cfg = cfg_mem(64, 4).with_append_budget(20_000);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let t0 = std::time::Instant::now();
        for chunk in 0..4u64 {
            let ks: Vec<u64> = (chunk * 2048..(chunk + 1) * 2048).collect();
            let cols = vec![
                ks.iter().map(|&k| row_of(k)[0]).collect::<Vec<_>>(),
                ks.iter().map(|&k| row_of(k)[1]).collect::<Vec<_>>(),
            ];
            lt.append_batch(&cols).unwrap();
        }
        let elapsed = t0.elapsed();
        let st = lt.stats();
        assert_eq!(st.rows, 8192);
        assert!(st.throttled_appends >= 1, "no append ever waited: {st:?}");
        assert!(st.throttle_wait_ns > 0);
        assert!(
            elapsed >= std::time::Duration::from_millis(125),
            "8192 rows at 20k rows/s finished in {elapsed:?}"
        );
    }

    #[test]
    fn zero_budget_and_zero_coalesce_are_rejected() {
        assert!(LiveTable::new(schema(), cfg_mem(4, 2).with_append_budget(0)).is_err());
        assert!(LiveTable::new(schema(), cfg_mem(4, 2).with_coalesce_segments(0)).is_err());
    }

    #[test]
    fn snapshots_pin_memory_bytes_until_dropped() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap(); // 8 rows/segment
        for k in 0..10u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        assert_eq!(lt.stats().pinned_snapshot_bytes, 0);
        // 8 rows frozen in memory + 2 tail rows, 2 attrs × 4 bytes.
        let snap = lt.snapshot();
        let want = 10 * 2 * 4;
        assert_eq!(snap.pinned_bytes(), want);
        assert_eq!(lt.stats().pinned_snapshot_bytes, want);
        // Clones share the pin: no double charge, released once.
        let clone = snap.clone();
        assert_eq!(lt.stats().pinned_snapshot_bytes, want);
        drop(snap);
        assert_eq!(lt.stats().pinned_snapshot_bytes, want);
        // A second snapshot adds its own charge.
        let snap2 = lt.snapshot();
        assert_eq!(
            lt.stats().pinned_snapshot_bytes,
            want + snap2.pinned_bytes()
        );
        drop(snap2);
        drop(clone);
        assert_eq!(lt.stats().pinned_snapshot_bytes, 0);
    }

    #[test]
    fn snapshot_bitmaps_match_a_scan_built_index() {
        let lt = LiveTable::new(schema(), cfg_mem(3, 2)).unwrap();
        for k in 0..25u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        let layout = snap.layout();
        for attr in 0..2 {
            let want = crate::bitmap::BitmapIndex::build(&t, attr, &layout);
            let got = snap.bitmap(attr);
            assert_eq!(got.num_blocks(), want.num_blocks());
            assert_eq!(got.num_values(), want.num_values());
            for v in 0..got.num_values() as u32 {
                for b in 0..layout.num_blocks() {
                    assert_eq!(
                        got.block_has(v, b),
                        want.block_has(v, b),
                        "attr {attr} v {v} b {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_snapshot_has_no_blocks() {
        let lt = LiveTable::new(schema(), cfg_mem(4, 2)).unwrap();
        let snap = lt.snapshot();
        assert_eq!(snap.n_rows(), 0);
        assert_eq!(snap.layout().num_blocks(), 0);
        assert_eq!(snap.to_table().unwrap().n_rows(), 0);
    }

    #[test]
    fn snapshot_reads_match_blockwise() {
        let dir = TempBlockDir::new("live_blockwise");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        for k in 0..21u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        let layout = snap.layout();
        let mut buf = Vec::new();
        for attr in 0..2 {
            for b in 0..layout.num_blocks() {
                snap.read_block_into(b, attr, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(attr)[layout.rows_of_block(b)]);
            }
        }
        // Prefetch over the whole range (file, mem and tail blocks) is
        // advisory and must not panic or misroute.
        snap.prefetch(0..layout.num_blocks() + 3);
    }

    #[test]
    fn wal_logs_appends_and_rotates_on_seal() {
        let dir = TempBlockDir::new("live_wal");
        let cfg = cfg_mem(4, 2) // 8 rows/segment
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_wal_sync_every(1);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        assert!(dir.path().join(WAL_FILE).exists());
        for k in 0..5u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.wal_records, 5);
        assert_eq!(st.wal_errors, 0);
        assert_eq!(st.wal_rotations, 0, "nothing sealed yet");
        let r = wal::replay(&dir.path().join(WAL_FILE), 2).unwrap();
        assert_eq!(r.base_rows, 0);
        assert_eq!(r.rows, 5);
        // Fill past two seals: the second rotation lags one run, so the
        // log's base is the start of the newest sealed run.
        for k in 5..17u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.persisted_segments, 2);
        assert!(st.wal_rotations >= 1);
        assert_eq!(st.wal_errors, 0);
        let r = wal::replay(&dir.path().join(WAL_FILE), 2).unwrap();
        assert_eq!(r.base_rows, 8, "lag-one: newest sealed run stays logged");
        assert_eq!(r.base_rows + r.rows, 17, "log covers every row past base");
    }

    #[test]
    fn wal_can_be_disabled() {
        let dir = TempBlockDir::new("live_nowal");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_wal(false);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        lt.append_row(&row_of(0)).unwrap();
        assert!(!dir.path().join(WAL_FILE).exists());
        assert_eq!(lt.stats().wal_records, 0);
    }

    #[test]
    fn open_restores_rows_segments_and_indexes() {
        let dir = TempBlockDir::new("live_reopen");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_wal_sync_every(1);
        {
            let lt = LiveTable::new(schema(), cfg.clone()).unwrap();
            for k in 0..21u64 {
                lt.append_row(&row_of(k)).unwrap();
            }
        }
        let lt = LiveTable::open(schema(), cfg).unwrap();
        let st = lt.stats();
        assert_eq!(st.rows, 21);
        assert_eq!(st.recovered_rows, 5, "rows 16..21 came from the WAL");
        assert_eq!(st.recovered_torn_segments, 0);
        assert_eq!(st.wal_errors, 0);
        assert!(st.recovery_ns > 0);
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        for k in 0..21u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
            assert_eq!(t.code(1, k as usize), row_of(k)[1]);
        }
        // Rebuilt indexes equal scan-built ones.
        let layout = snap.layout();
        for attr in 0..2 {
            let want_bm = crate::bitmap::BitmapIndex::build(&t, attr, &layout);
            let got_bm = snap.bitmap(attr);
            for v in 0..got_bm.num_values() as u32 {
                for b in 0..layout.num_blocks() {
                    assert_eq!(got_bm.block_has(v, b), want_bm.block_has(v, b));
                }
            }
            assert_eq!(snap.zone_map(attr), &ZoneMap::build(&t, attr, &layout));
        }
        // The table keeps working after recovery: delta ids continue.
        for k in 21..40u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        assert_eq!(lt.snapshot().n_rows(), 40);
        assert_eq!(lt.stats().seal_errors, 0);
    }

    #[test]
    fn open_of_an_empty_dir_is_a_fresh_table() {
        let dir = TempBlockDir::new("live_open_empty");
        let cfg = cfg_mem(4, 2).with_segment_dir(dir.path());
        let lt = LiveTable::open(schema(), cfg).unwrap();
        assert_eq!(lt.n_rows(), 0);
        assert_eq!(lt.stats().recovered_rows, 0);
        lt.append_row(&row_of(0)).unwrap();
        assert_eq!(lt.snapshot().n_rows(), 1);
        // But no directory at all is a configuration error.
        assert!(matches!(
            LiveTable::open(schema(), cfg_mem(4, 2)),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn open_survives_a_torn_last_segment_via_the_wal_lag() {
        let dir = TempBlockDir::new("live_torn_seg");
        let cfg = cfg_mem(4, 2)
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_coalesce_segments(1)
            .with_wal_sync_every(1);
        {
            let lt = LiveTable::new(schema(), cfg.clone()).unwrap();
            for k in 0..19u64 {
                lt.append_row(&row_of(k)).unwrap();
            }
        }
        // Tear the newest segment file mid-page. Its 8 rows are still
        // in the WAL (lag-one rotation), so nothing durable is lost.
        let torn = dir.path().join("segment-000001.fmb");
        let bytes = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        let lt = LiveTable::open(schema(), cfg).unwrap();
        let st = lt.stats();
        assert_eq!(st.recovered_torn_segments, 1);
        assert_eq!(st.rows, 19);
        assert_eq!(st.recovered_rows, 11, "8 torn + 3 tail rows replayed");
        let t = lt.snapshot().to_table().unwrap();
        for k in 0..19u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
        }
    }

    #[test]
    fn inline_compaction_bounds_segment_files() {
        let dir = TempBlockDir::new("live_compact_inline");
        let cfg = cfg_mem(4, 1) // 4 rows/delta
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_coalesce_segments(1)
            .with_compaction(2);
        let lt = LiveTable::new(schema(), cfg).unwrap();
        let before = lt.snapshot();
        for k in 0..24u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let st = lt.stats();
        assert_eq!(st.frozen_segments, 6);
        assert!(st.compactions >= 1, "6 files must have merged: {st:?}");
        assert_eq!(st.compact_errors, 0);
        assert!(lt.num_segment_files() <= 2, "fan-in bounds the file count");
        // Merged data is bit-identical, blockwise.
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        let layout = snap.layout();
        let mut buf = Vec::new();
        for attr in 0..2 {
            for b in 0..layout.num_blocks() {
                snap.read_block_into(b, attr, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(attr)[layout.rows_of_block(b)]);
            }
        }
        for k in 0..24u64 {
            assert_eq!(t.code(1, k as usize), row_of(k)[1]);
        }
        // Old snapshots still read the pre-compaction backends.
        assert_eq!(before.n_rows(), 0);
        drop(before);
        // And a reopen sees only the merged files.
        drop(lt);
        let reopened = LiveTable::open(
            schema(),
            cfg_mem(4, 1)
                .with_segment_dir(dir.path())
                .with_background_sealer(false)
                .with_coalesce_segments(1)
                .with_compaction(2),
        )
        .unwrap();
        assert_eq!(reopened.stats().recovered_torn_segments, 0);
        assert_eq!(reopened.snapshot().to_table().unwrap(), t);
    }

    #[test]
    fn compact_now_is_explicit_and_counted() {
        let dir = TempBlockDir::new("live_compact_now");
        // No automatic trigger path: fan_in set but sealing inline with
        // compaction disabled first — use a config without compaction,
        // then reopen with it and compact explicitly.
        let plain = cfg_mem(4, 1)
            .with_segment_dir(dir.path())
            .with_background_sealer(false)
            .with_coalesce_segments(1);
        {
            let lt = LiveTable::new(schema(), plain.clone()).unwrap();
            for k in 0..16u64 {
                lt.append_row(&row_of(k)).unwrap();
            }
            assert_eq!(lt.num_segment_files(), 4);
            assert_eq!(lt.compact_now(), 0, "compaction not configured");
        }
        let lt = LiveTable::open(schema(), plain.with_compaction(3)).unwrap();
        assert_eq!(lt.num_segment_files(), 4);
        let merges = lt.compact_now();
        assert!(merges >= 1);
        assert!(lt.num_segment_files() <= 3);
        assert_eq!(lt.stats().compactions, merges);
        let t = lt.snapshot().to_table().unwrap();
        for k in 0..16u64 {
            assert_eq!(t.code(0, k as usize), row_of(k)[0]);
        }
    }

    #[test]
    fn degenerate_lifecycle_configs_are_rejected() {
        assert!(matches!(
            LiveTable::new(schema(), cfg_mem(4, 2).with_compaction(1)),
            Err(StoreError::Invalid(_))
        ));
        // Compaction without a directory is refused outright.
        assert!(matches!(
            LiveTable::new(schema(), cfg_mem(4, 2).with_compaction(4)),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn snapshot_zone_maps_match_a_scan_built_reference() {
        let lt = LiveTable::new(schema(), cfg_mem(3, 2)).unwrap();
        for k in 0..25u64 {
            lt.append_row(&row_of(k)).unwrap();
        }
        let snap = lt.snapshot();
        let t = snap.to_table().unwrap();
        let layout = snap.layout();
        for attr in 0..2 {
            assert_eq!(snap.zone_map(attr), &ZoneMap::build(&t, attr, &layout));
            assert_eq!(&*snap.zone_map_arc(attr), snap.zone_map(attr));
        }
    }

    #[test]
    fn concurrent_appenders_never_tear_rows() {
        let lt = LiveTable::new(schema(), cfg_mem(5, 2)).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let lt = &lt;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        lt.append_row(&row_of(w * 10_000 + i)).unwrap();
                    }
                });
            }
            // Snapshots race the appenders; every row they see must be
            // internally consistent.
            for _ in 0..20 {
                let t = lt.snapshot().to_table().unwrap();
                for r in 0..t.n_rows() {
                    let z = t.code(0, r) as u64;
                    let x = t.code(1, r);
                    // row_of(k): z = k % 6, x = (k*7) % 4. For every k
                    // with k % 6 == z there is exactly one x residue per
                    // (z mod 4 cycle); verify membership in the valid set.
                    let valid = (0..24u64)
                        .filter(|k| k % 6 == z)
                        .map(|k| ((k * 7) % 4) as u32)
                        .collect::<std::collections::HashSet<_>>();
                    assert!(valid.contains(&x), "torn row {r}: z={z} x={x}");
                }
            }
        });
        let final_t = lt.snapshot().to_table().unwrap();
        assert_eq!(final_t.n_rows(), 2000);
    }
}
