//! Sealed segments of a [`crate::live::LiveTable`].
//!
//! A segment is one full delta's worth of rows, immutable from the
//! moment it is frozen. It exists in one of two representations:
//!
//! * [`SegmentEntry::Mem`] — the frozen delta itself, an in-memory
//!   [`Table`]. This is what a freeze installs *immediately*, under the
//!   state lock, so snapshots taken at any instant see a prefix of the
//!   append order with no gap while persistence is in flight.
//! * [`SegmentEntry::File`] — the persisted form: the same rows written
//!   through the existing block-file writer ([`crate::file::write_table`],
//!   position-keyed checksums and all) and re-opened as a
//!   [`FileBackend`]. The sealer swaps `Mem → File` in place; snapshots
//!   holding the old `Arc` keep reading the in-memory copy until they
//!   drop.
//!
//! Because deltas freeze only when exactly full, every sealed segment
//! holds `blocks_per_segment` *full* blocks — which is what lets a
//! snapshot present all segments plus the tail as one contiguous
//! [`crate::block::BlockLayout`] (only the final tail block may be
//! short).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::Result;
use crate::file::{write_table_atomic, FileBackend};
use crate::table::Table;

/// One sealed (immutable) segment, in whichever representation it
/// currently has. Cloning clones the `Arc`, not the data.
#[derive(Debug, Clone)]
pub(crate) enum SegmentEntry {
    /// Frozen delta, not yet persisted (or never persisted: a live table
    /// without a segment directory keeps all segments in this form).
    Mem(Arc<Table>),
    /// Persisted and re-opened through the checksummed block-file path.
    File(Arc<FileBackend>),
}

impl SegmentEntry {
    /// Rows of this segment (both forms hold exactly one full delta).
    #[cfg(test)]
    pub fn n_rows(&self) -> usize {
        match self {
            SegmentEntry::Mem(t) => t.n_rows(),
            SegmentEntry::File(be) => {
                use crate::backend::StorageBackend;
                be.n_rows()
            }
        }
    }
}

/// How segment files of one live table are produced: destination paths,
/// block geometry, and the cache/readahead configuration each re-opened
/// [`FileBackend`] gets.
#[derive(Debug, Clone)]
pub(crate) struct SegmentWriter {
    dir: PathBuf,
    tuples_per_block: usize,
    cache_blocks: usize,
    prefetch_workers: usize,
}

impl SegmentWriter {
    pub fn new(
        dir: PathBuf,
        tuples_per_block: usize,
        cache_blocks: usize,
        prefetch_workers: usize,
    ) -> Self {
        SegmentWriter {
            dir,
            tuples_per_block,
            cache_blocks,
            prefetch_workers,
        }
    }

    /// The directory segment files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path of segment `index`.
    pub fn path_of(&self, index: usize) -> PathBuf {
        self.dir.join(format!("segment-{index:06}.fmb"))
    }

    /// Persists one frozen delta as segment `index` and re-opens it as
    /// a backend. The write is crash-safe
    /// ([`crate::file::write_table_atomic`]: temp file, fsync, rename,
    /// directory fsync), so the segment name only ever holds a
    /// complete, durable file — a crash mid-seal leaves at worst a
    /// `.tmp` that recovery sweeps away. Failure never removes what is
    /// at the final name: before the rename that is the *previous*
    /// occupant (compaction seals over a live member's name), and
    /// after it a complete file that merely failed to re-open — either
    /// way recovery knows better than a blind unlink here.
    pub fn seal(&self, index: usize, table: &Table) -> Result<Arc<FileBackend>> {
        let path = self.path_of(index);
        write_table_atomic(&path, table, self.tuples_per_block)
            .and_then(|_| self.open(&path))
            .map(Arc::new)
    }

    fn open(&self, path: &Path) -> Result<FileBackend> {
        Ok(FileBackend::open(path)?
            .with_cache_blocks(self.cache_blocks)
            .with_prefetch_workers(self.prefetch_workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::schema::{AttrDef, Schema};
    use crate::tempfile::TempBlockDir;

    fn delta() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 5), AttrDef::new("x", 3)]);
        let z: Vec<u32> = (0..40).map(|r| r % 5).collect();
        let x: Vec<u32> = (0..40).map(|r| r % 3).collect();
        Table::new(schema, vec![z, x])
    }

    #[test]
    fn seal_roundtrips_every_page() {
        let dir = TempBlockDir::new("seg_seal");
        let w = SegmentWriter::new(dir.path().to_path_buf(), 10, 64, 0);
        let t = delta();
        let be = w.seal(3, &t).unwrap();
        assert!(w.path_of(3).exists());
        assert_eq!(be.n_rows(), 40);
        let mut buf = Vec::new();
        for a in 0..2 {
            for b in 0..4 {
                be.read_block_into(b, a, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), &t.column(a)[b * 10..(b + 1) * 10]);
            }
        }
    }

    #[test]
    fn seal_failure_leaves_no_file_at_the_final_name() {
        // Point the writer at a path that cannot be created.
        let dir = TempBlockDir::new("seg_fail");
        let missing = dir.path().join("nonexistent-subdir");
        let w = SegmentWriter::new(missing.clone(), 10, 64, 0);
        let err = w.seal(0, &delta());
        assert!(err.is_err());
        assert!(!missing.join("segment-000000.fmb").exists());
    }

    #[test]
    fn entry_rows_agree_across_forms() {
        let dir = TempBlockDir::new("seg_forms");
        let w = SegmentWriter::new(dir.path().to_path_buf(), 10, 64, 0);
        let t = Arc::new(delta());
        let mem = SegmentEntry::Mem(Arc::clone(&t));
        let file = SegmentEntry::File(w.seal(0, &t).unwrap());
        assert_eq!(mem.n_rows(), file.n_rows());
    }
}
