//! The append-side in-memory delta of a [`crate::live::LiveTable`].
//!
//! A memtable is the *active* delta: plain columnar code vectors that
//! rows are pushed into under the live table's state lock, bounded at
//! one segment's worth of rows. When it fills, the live table freezes it
//! into an immutable [`crate::table::Table`] and starts a fresh one; the
//! frozen delta then gets sealed to a checksummed segment file off the
//! append path (see [`crate::live::segment`]).
//!
//! Alongside the memtable lives one [`LiveBitmap`] per attribute: the
//! incrementally maintained twin of [`crate::bitmap::BitmapIndex`],
//! updated bit-by-bit as rows arrive so a snapshot can hand out an
//! *exact* per-(value, block) presence index without ever re-scanning
//! the data.

/// The active delta: one growing code vector per attribute, capped at
/// the live table's rows-per-segment.
#[derive(Debug)]
pub(crate) struct MemTable {
    columns: Vec<Vec<u32>>,
    capacity_rows: usize,
}

impl MemTable {
    /// An empty delta for `n_attrs` attributes, reserving space for
    /// `capacity_rows` rows per column.
    pub fn new(n_attrs: usize, capacity_rows: usize) -> Self {
        MemTable {
            columns: (0..n_attrs)
                .map(|_| Vec::with_capacity(capacity_rows))
                .collect(),
            capacity_rows,
        }
    }

    /// Rows currently buffered.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Rows that still fit before the delta is full.
    pub fn room(&self) -> usize {
        self.capacity_rows - self.rows()
    }

    /// Appends `take` rows of `cols` starting at row offset `off`.
    /// Callers have validated arity and codes and checked [`Self::room`].
    pub fn extend(&mut self, cols: &[&[u32]], off: usize, take: usize) {
        debug_assert_eq!(cols.len(), self.columns.len(), "arity checked upstream");
        debug_assert!(take <= self.room(), "capacity checked upstream");
        for (col, src) in self.columns.iter_mut().zip(cols) {
            col.extend_from_slice(&src[off..off + take]);
        }
    }

    /// The buffered columns (for snapshot tail copies).
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }

    /// Takes the full delta's columns out, leaving a fresh empty delta
    /// in place.
    ///
    /// # Panics
    /// Panics unless the delta is exactly full.
    pub fn take_full(&mut self) -> Vec<Vec<u32>> {
        assert_eq!(self.rows(), self.capacity_rows, "delta must be full");
        self.columns
            .iter_mut()
            .map(|c| std::mem::replace(c, Vec::with_capacity(self.capacity_rows)))
            .collect()
    }
}

/// One attribute's incrementally maintained per-(value, block) presence
/// bits. Unlike [`crate::bitmap::BitmapIndex`] the per-value rows grow
/// independently as blocks appear, so setting a bit never re-lays-out
/// the whole index; a snapshot assembles the fixed-stride form on
/// demand.
#[derive(Debug)]
pub(crate) struct LiveBitmap {
    /// `rows[v][b / 64] >> (b % 64) & 1` ⇔ block `b` holds value `v`.
    rows: Vec<Vec<u64>>,
}

impl LiveBitmap {
    /// An all-zero bitmap for `num_values` dictionary codes.
    pub fn new(num_values: u32) -> Self {
        LiveBitmap {
            rows: (0..num_values).map(|_| Vec::new()).collect(),
        }
    }

    /// Marks value `v` present in block `b`.
    #[inline]
    pub fn set(&mut self, v: u32, b: usize) {
        let row = &mut self.rows[v as usize];
        let w = b / 64;
        if row.len() <= w {
            row.resize(w + 1, 0);
        }
        row[w] |= 1u64 << (b % 64);
    }

    /// Assembles the frozen [`crate::bitmap::BitmapIndex`] covering the
    /// first `num_blocks` blocks. All set bits must lie below
    /// `num_blocks` — guaranteed when called under the same lock that
    /// serializes [`Self::set`] with row appends.
    pub fn freeze(&self, num_blocks: usize) -> crate::bitmap::BitmapIndex {
        crate::bitmap::BitmapIndex::from_value_rows(self.rows.len(), num_blocks, &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memtable_fills_and_resets() {
        let mut m = MemTable::new(2, 4);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.room(), 4);
        let a = [1u32, 2, 3, 4];
        let b = [5u32, 6, 7, 8];
        m.extend(&[&a[..], &b[..]], 0, 3);
        assert_eq!(m.rows(), 3);
        m.extend(&[&a[..], &b[..]], 3, 1);
        assert_eq!(m.room(), 0);
        let cols = m.take_full();
        assert_eq!(cols, vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]]);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.room(), 4);
    }

    #[test]
    #[should_panic(expected = "delta must be full")]
    fn taking_a_partial_delta_panics() {
        let mut m = MemTable::new(1, 4);
        let a = [0u32];
        m.extend(&[&a[..]], 0, 1);
        m.take_full();
    }

    #[test]
    fn live_bitmap_freezes_to_exact_index() {
        let mut bm = LiveBitmap::new(3);
        bm.set(0, 0);
        bm.set(2, 0);
        bm.set(1, 70); // crosses the first word boundary
        let idx = bm.freeze(71);
        assert_eq!(idx.num_values(), 3);
        assert_eq!(idx.num_blocks(), 71);
        assert!(idx.block_has(0, 0));
        assert!(!idx.block_has(1, 0));
        assert!(idx.block_has(2, 0));
        assert!(idx.block_has(1, 70));
        assert!(!idx.block_has(1, 69));
    }

    #[test]
    fn freeze_of_shorter_view_keeps_prefix() {
        // A frozen index may cover fewer blocks than another value has
        // words for — only bits at/after num_blocks are forbidden.
        let mut bm = LiveBitmap::new(2);
        bm.set(0, 3);
        let idx = bm.freeze(4);
        assert!(idx.block_has(0, 3));
        assert!(!idx.block_has(1, 3));
    }

    #[test]
    #[should_panic(expected = "bits beyond block")]
    fn freeze_rejects_bits_past_the_view() {
        let mut bm = LiveBitmap::new(1);
        bm.set(0, 9);
        bm.freeze(8);
    }
}
