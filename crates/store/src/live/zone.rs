//! Per-block min/max/count zone maps for live-table attributes.
//!
//! The presence bitmaps ([`crate::bitmap::BitmapIndex`]) answer "does
//! block `b` contain value `v`" exactly — but only for attributes that
//! have one, and only for equality against a single code. A zone map is
//! the cheap order-based complement (Provenance-based Data Skipping,
//! arXiv:2104.12815): each block keeps the minimum and maximum code it
//! contains plus its row count, so a predicate can skip a block when
//! its value range provably excludes a match. For *binned* attributes
//! ([`crate::binning::Binner`] — dictionary codes in bin order) the
//! min/max bound is the binned analogue of a numeric range filter;
//! range predicates over codes skip through zones where per-value
//! bitmaps would need a union over every code in the range.
//!
//! Like the live bitmaps, zones are maintained **at append time** in
//! the same critical section that copies rows into the memtable (one
//! `min`/`max` update per code — no data scan at snapshot time), frozen
//! per snapshot ([`ZoneMap`]) covering sealed blocks and tail alike,
//! and rebuilt by the recovery scan on [`crate::live::LiveTable::open`].
//! Compaction merges segment *files* without reordering rows, so block
//! contents — and therefore zones — are compaction-invariant.
//!
//! Skipping is *conservative by construction*: a zone test may return
//! `true` for a block with no matching row (the range bound is coarse)
//! but never `false` for one that has a match — the same contract as
//! [`crate::predicate::Predicate::may_match_block`], property-tested in
//! `store/tests/properties.rs`.

use crate::block::BlockLayout;
use crate::table::Table;

/// One block's running bounds while the table is live.
#[derive(Debug, Clone, Copy)]
struct Zone {
    min: u32,
    max: u32,
    count: u32,
}

const EMPTY_ZONE: Zone = Zone {
    min: u32::MAX,
    max: 0,
    count: 0,
};

/// One attribute's incrementally maintained per-block bounds, the
/// append-side twin of [`ZoneMap`] (as `LiveBitmap` is to
/// `BitmapIndex`). Updated under the live table's state lock.
#[derive(Debug)]
pub(crate) struct LiveZones {
    zones: Vec<Zone>,
}

impl LiveZones {
    /// An empty zone set (no blocks yet).
    pub fn new() -> Self {
        LiveZones { zones: Vec::new() }
    }

    /// Folds one appended code into block `b`'s bounds.
    #[inline]
    pub fn note(&mut self, b: usize, v: u32) {
        if self.zones.len() <= b {
            self.zones.resize(b + 1, EMPTY_ZONE);
        }
        let z = &mut self.zones[b];
        z.min = z.min.min(v);
        z.max = z.max.max(v);
        z.count += 1;
    }

    /// Freezes the first `num_blocks` blocks into an immutable
    /// [`ZoneMap`]. All noted rows must lie below `num_blocks` —
    /// guaranteed when called under the same lock that serializes
    /// [`Self::note`] with row appends.
    pub fn freeze(&self, num_blocks: usize) -> ZoneMap {
        debug_assert!(
            self.zones.len() <= num_blocks || self.zones[num_blocks..].iter().all(|z| z.count == 0),
            "zones beyond the frozen view must be empty"
        );
        let mut mins = Vec::with_capacity(num_blocks);
        let mut maxs = Vec::with_capacity(num_blocks);
        let mut counts = Vec::with_capacity(num_blocks);
        for b in 0..num_blocks {
            let z = self.zones.get(b).copied().unwrap_or(EMPTY_ZONE);
            mins.push(z.min);
            maxs.push(z.max);
            counts.push(z.count);
        }
        ZoneMap { mins, maxs, counts }
    }
}

/// An immutable per-block min/max/count summary of one attribute,
/// frozen at snapshot (or built by a scan); see the [module
/// docs](self). Blocks with `count == 0` match nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    mins: Vec<u32>,
    maxs: Vec<u32>,
    counts: Vec<u32>,
}

impl ZoneMap {
    /// Builds the reference zone map by scanning one attribute of a
    /// materialized table — the ground truth the incremental path must
    /// equal (mirrors [`crate::bitmap::BitmapIndex::build`]).
    pub fn build(table: &Table, attr: usize, layout: &BlockLayout) -> ZoneMap {
        let mut zones = LiveZones::new();
        let col = table.column(attr);
        for b in 0..layout.num_blocks() {
            for r in layout.rows_of_block(b) {
                zones.note(b, col[r]);
            }
        }
        zones.freeze(layout.num_blocks())
    }

    /// Blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.mins.len()
    }

    /// Rows summarized in block `b` (0 past the covered range).
    pub fn count(&self, b: usize) -> u32 {
        self.counts.get(b).copied().unwrap_or(0)
    }

    /// Block `b`'s code bounds, or `None` for an empty or uncovered
    /// block.
    pub fn min_max(&self, b: usize) -> Option<(u32, u32)> {
        (self.count(b) > 0).then(|| (self.mins[b], self.maxs[b]))
    }

    /// Conservative test: may block `b` contain code `v`? Blocks past
    /// the covered range answer "maybe" (zones can be consulted with
    /// slightly stale block ids; a wrong `true` only costs a read);
    /// covered-but-empty blocks answer "no".
    pub fn may_contain(&self, b: usize, v: u32) -> bool {
        if b >= self.num_blocks() {
            return true;
        }
        match self.min_max(b) {
            Some((lo, hi)) => lo <= v && v <= hi,
            None => false,
        }
    }

    /// Conservative test: may block `b` contain any code in
    /// `lo..=hi`? The range form is where zones beat per-value
    /// bitmaps: one comparison regardless of how many codes the range
    /// spans.
    pub fn may_overlap(&self, b: usize, lo: u32, hi: u32) -> bool {
        if b >= self.num_blocks() {
            return true;
        }
        match self.min_max(b) {
            Some((zmin, zmax)) => zmin <= hi && lo <= zmax,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 10)]);
        Table::new(schema, vec![vec![3, 1, 4, 1, 5, 9, 2, 6]])
    }

    #[test]
    fn build_matches_incremental_notes() {
        let t = table();
        let layout = BlockLayout::new(8, 3);
        let built = ZoneMap::build(&t, 0, &layout);
        let mut live = LiveZones::new();
        for (r, &v) in t.column(0).iter().enumerate() {
            live.note(r / 3, v);
        }
        assert_eq!(live.freeze(layout.num_blocks()), built);
        assert_eq!(built.num_blocks(), 3);
        assert_eq!(built.min_max(0), Some((1, 4)));
        assert_eq!(built.min_max(1), Some((1, 9)));
        assert_eq!(built.min_max(2), Some((2, 6)));
        assert_eq!(built.count(2), 2);
    }

    #[test]
    fn contain_and_overlap_are_exact_on_bounds() {
        let t = table();
        let layout = BlockLayout::new(8, 3);
        let zm = ZoneMap::build(&t, 0, &layout);
        assert!(zm.may_contain(0, 1));
        assert!(zm.may_contain(0, 2), "2 is absent but inside the bound");
        assert!(!zm.may_contain(0, 0));
        assert!(!zm.may_contain(0, 5));
        assert!(zm.may_overlap(2, 0, 2));
        assert!(zm.may_overlap(2, 6, 9));
        assert!(!zm.may_overlap(2, 7, 9));
        assert!(!zm.may_overlap(0, 5, 9));
    }

    #[test]
    fn empty_blocks_match_nothing_and_stale_ids_say_maybe() {
        let mut live = LiveZones::new();
        live.note(1, 7); // block 0 never noted
        let zm = live.freeze(2);
        assert_eq!(zm.min_max(0), None);
        assert!(!zm.may_contain(0, 0));
        assert!(!zm.may_overlap(0, 0, u32::MAX));
        assert!(zm.may_contain(1, 7));
        // Past the frozen view: conservative "maybe".
        assert!(zm.may_contain(5, 0));
        assert!(zm.may_overlap(5, 0, 0));
    }

    #[test]
    fn freeze_of_wider_view_pads_empty_blocks() {
        let mut live = LiveZones::new();
        live.note(0, 2);
        let zm = live.freeze(3);
        assert_eq!(zm.num_blocks(), 3);
        assert_eq!(zm.min_max(0), Some((2, 2)));
        assert_eq!(zm.min_max(1), None);
        assert_eq!(zm.count(2), 0);
    }
}
