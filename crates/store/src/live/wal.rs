//! Write-ahead log of a [`crate::live::LiveTable`].
//!
//! Sealed segments are durable the moment their atomic rename lands
//! (see [`crate::file::write_table_atomic`]); everything after the
//! sealed watermark — frozen-but-unsealed deltas and the active
//! memtable tail — lives only in memory. The WAL closes that gap:
//! every append is logged as one checksummed record *before* it is
//! applied to the memtable, so [`crate::live::LiveTable::open`] can
//! replay the tail after a crash.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ magic "FMWAL001"  base_rows:u64  n_attrs:u32  checksum:u64 │
//! ├────────────────────────────────────────────────────────────┤
//! │ record 0: n_rows:u32  codes (n_attrs × n_rows × u32 LE)    │
//! │           checksum:u64 (FNV-1a, keyed by record seq)       │
//! │ record 1: …                                                │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. `base_rows` is the global row index
//! of the first logged row: rows below it were durably sealed when the
//! log was (re)written, so replay adds `base_rows` to its running
//! cursor and skips any row the recovered segments already cover
//! ([`replay_split`]). Record checksums reuse the block file's FNV-1a
//! discipline, keyed by record *sequence number* so a record copied to
//! another slot fails verification just like a misplaced page.
//!
//! **Group fsync** — `sync_every = n` fsyncs after every `n`th record
//! (`1` = every record, the strictest setting; `0` never fsyncs and
//! leaves flushing to the OS). A crash may therefore lose up to the
//! unsynced suffix of records; what it can never do is corrupt the
//! durable prefix, because a torn or half-flushed record fails its
//! checksum and replay stops *there*, treating everything before it as
//! the recovered prefix (`WalReplay::torn_tail`).
//!
//! **Truncation by rotation** — the WAL would grow forever if seals
//! never trimmed it. After a seal run lands durably the live table
//! rewrites the log: a fresh file at `wal.fmw.tmp` carrying only the
//! rows past the *previous* durable watermark ([`rotation_base`] — the
//! lag keeps the newest sealed segment covered, so a torn last segment
//! file is still recoverable from the WAL), fsynced, renamed over
//! `wal.fmw`, directory fsynced. A crash at any point leaves either
//! the old complete log or the new complete log — never neither.
//!
//! The pure decision functions ([`durable_prefix_rows`],
//! [`rotation_base`], [`replay_split`]) are shared with the
//! `wal_recovery` model in `fastmatch-check`, which explores
//! crash/replay interleavings against the invariants
//! `recovered-prefix-is-durable-prefix`, `no-replayed-row-lost` and
//! `seal-truncation-never-drops-unsealed-rows`.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{Result, StoreError};
use crate::file::{fnv1a64, fsync_dir, tmp_sibling, FNV_BASIS};

/// WAL file magic: identifies format and version.
const WAL_MAGIC: &[u8; 8] = b"FMWAL001";

/// The WAL's file name inside a segment directory. Public so crash
/// tests and operational tooling can find (and deliberately damage)
/// the log without hard-coding the name.
pub const WAL_FILE: &str = "wal.fmw";

/// Default group-fsync interval, in records (see
/// [`crate::live::LiveTableConfig::wal_sync_every`]).
pub const DEFAULT_WAL_SYNC_EVERY: usize = 64;

/// Serialized header length: magic + base_rows + n_attrs + checksum.
const HEADER_LEN: usize = 8 + 8 + 4 + 8;

/// Checksum basis of record `seq`: sequence-keyed the way page
/// checksums are position-keyed, and disjoint from the header basis.
fn record_basis(seq: u64) -> u64 {
    FNV_BASIS ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x57414c
}

/// Decodes a little-endian `u32` from the first 4 bytes of `b`.
/// Callers bound-check via `get` before calling; slicing keeps the
/// decode itself infallible.
fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

/// Decodes a little-endian `u64` from the first 8 bytes of `b`.
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

// ------------------------------------------------------------- decisions

/// Rows covered by the leading run of *durably sealed* segments, given
/// each entry's `(rows, sealed)` in table order. Seals complete in
/// delta order, so in production the run is simply "File entries until
/// the first Mem one" — but the prefix rule, not the scheduler, is
/// what recovery may rely on, which is why the `wal_recovery` model
/// imports this exact function.
pub fn durable_prefix_rows(entries: impl IntoIterator<Item = (usize, bool)>) -> usize {
    let mut rows = 0usize;
    for (r, sealed) in entries {
        if !sealed {
            break;
        }
        rows += r;
    }
    rows
}

/// The base (first retained global row) the WAL rotates to after a
/// seal: one sealed run *behind* the current durable watermark, and
/// never backwards. `durable_rows` is the watermark after the seal,
/// `just_sealed_rows` the rows that seal added to it. Lagging by one
/// run means the newest segment file's rows stay in the log until the
/// *next* seal confirms the directory state — so a torn last segment
/// (crash mid-rename, bit rot) is still recoverable from the WAL, at
/// the cost of one extra run of retained records.
pub fn rotation_base(old_base: u64, durable_rows: u64, just_sealed_rows: u64) -> u64 {
    old_base.max(durable_rows.saturating_sub(just_sealed_rows))
}

/// Splits one replayed record into `(skip, take)`: the record's rows
/// span `[record_start, record_start + record_rows)` in global row
/// order, and rows below `sealed_rows` are already served by recovered
/// segment files, so only the remainder re-enters the memtable.
pub fn replay_split(record_start: u64, record_rows: u64, sealed_rows: u64) -> (u64, u64) {
    let skip = sealed_rows.saturating_sub(record_start).min(record_rows);
    (skip, record_rows - skip)
}

// ---------------------------------------------------------------- writer

/// The append-side handle on one WAL file. All methods are `&mut`: the
/// live table serializes WAL access under its state lock, which is the
/// same ordering the log's contents must reflect.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    n_attrs: usize,
    sync_every: usize,
    base_rows: u64,
    /// Rows logged since `base_rows`.
    rows: u64,
    /// Records written (the next record's checksum key).
    seq: u64,
    /// Records since the last fsync.
    since_sync: usize,
    /// Fsyncs issued (group syncs + rotation syncs), for stats.
    syncs: u64,
}

impl WalWriter {
    /// Creates a fresh log at `path` (truncating any previous file)
    /// with the given base watermark, fsyncing the header and the
    /// directory so an empty log is never confused with a missing one.
    pub fn create(
        path: &Path,
        base_rows: u64,
        n_attrs: usize,
        sync_every: usize,
    ) -> Result<WalWriter> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes(base_rows, n_attrs))?;
        file.sync_all()?;
        if let Some(dir) = path.parent() {
            fsync_dir(dir)?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            n_attrs,
            sync_every,
            base_rows,
            rows: 0,
            seq: 0,
            since_sync: 0,
            syncs: 1,
        })
    }

    /// Rewrites the log at `path` with a new base, carrying the given
    /// records (one per retained batch; column slices in schema order),
    /// via the same temp + fsync + rename + dir-fsync staging as
    /// segment files — a crash leaves old log or new log, never
    /// neither. Returns the writer for the new file.
    pub fn rotate_to(
        path: &Path,
        base_rows: u64,
        n_attrs: usize,
        sync_every: usize,
        records: &[Vec<&[u32]>],
    ) -> Result<WalWriter> {
        let tmp = tmp_sibling(path);
        let staged = (|| -> Result<WalWriter> {
            let mut writer = WalWriter::create(&tmp, base_rows, n_attrs, sync_every)?;
            for cols in records {
                let len = cols.first().map_or(0, |c| c.len());
                writer.append(cols, 0, len)?;
            }
            writer.file.sync_all()?;
            writer.syncs += 1;
            std::fs::rename(&tmp, path)?;
            Ok(writer)
        })();
        let mut writer = match staged {
            Ok(w) => w,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        if let Some(dir) = path.parent() {
            fsync_dir(dir)?;
        }
        writer.path = path.to_path_buf();
        writer.since_sync = 0;
        Ok(writer)
    }

    /// Logs `len` rows of `cols` (starting at row offset `off`) as one
    /// record, group-fsyncing per the configured interval. Zero rows
    /// log nothing.
    pub fn append(&mut self, cols: &[&[u32]], off: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        if cols.len() != self.n_attrs {
            return Err(StoreError::Invalid(format!(
                "WAL record has {} columns, log expects {}",
                cols.len(),
                self.n_attrs
            )));
        }
        let mut rec = Vec::with_capacity(4 + self.n_attrs * len * 4 + 8);
        rec.extend_from_slice(&(len as u32).to_le_bytes());
        for col in cols {
            for &code in &col[off..off + len] {
                rec.extend_from_slice(&code.to_le_bytes());
            }
        }
        let ck = fnv1a64(record_basis(self.seq), &rec);
        rec.extend_from_slice(&ck.to_le_bytes());
        self.file.write_all(&rec)?;
        self.seq += 1;
        self.rows += len as u64;
        if self.sync_every > 0 {
            self.since_sync += 1;
            if self.since_sync >= self.sync_every {
                self.file.sync_data()?;
                self.since_sync = 0;
                self.syncs += 1;
            }
        }
        Ok(())
    }

    /// The first global row this log covers.
    pub fn base_rows(&self) -> u64 {
        self.base_rows
    }

    /// Rows logged since the base.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Fsyncs issued so far on this log.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The log's path (rotation keeps it stable).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Serialized header for a log with the given base.
fn header_bytes(base_rows: u64, n_attrs: usize) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(WAL_MAGIC);
    h.extend_from_slice(&base_rows.to_le_bytes());
    h.extend_from_slice(&(n_attrs as u32).to_le_bytes());
    let ck = fnv1a64(FNV_BASIS, &h);
    h.extend_from_slice(&ck.to_le_bytes());
    h
}

// ---------------------------------------------------------------- replay

/// The outcome of reading a WAL back: the valid record prefix plus how
/// the scan ended.
#[derive(Debug)]
pub(crate) struct WalReplay {
    /// Global row index of the first logged row.
    pub base_rows: u64,
    /// Decoded records in log order: one set of columns each, all of
    /// them checksum-verified.
    pub records: Vec<Vec<Vec<u32>>>,
    /// Rows across `records`.
    pub rows: u64,
    /// Whether the scan stopped at a torn/corrupt suffix (crash while
    /// appending) rather than clean end-of-file. The valid prefix is
    /// still good — a torn tail was by definition not yet durable.
    pub torn_tail: bool,
}

/// Reads the log at `path` back, verifying the header strictly (a log
/// whose *header* cannot be trusted yields [`StoreError::Format`] — the
/// caller treats that as "no usable WAL") and the records leniently:
/// the first record that is short, oversized or checksum-corrupt ends
/// the scan with [`WalReplay::torn_tail`] set, and everything before
/// it is returned.
pub(crate) fn replay(path: &Path, n_attrs: usize) -> Result<WalReplay> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Format("truncated WAL header".into()));
    }
    let (head, body) = bytes.split_at(HEADER_LEN);
    if &head[..8] != WAL_MAGIC {
        return Err(StoreError::Format("bad WAL magic".into()));
    }
    let stored = le_u64(&head[HEADER_LEN - 8..]);
    let computed = fnv1a64(FNV_BASIS, &head[..HEADER_LEN - 8]);
    if stored != computed {
        return Err(StoreError::Format(format!(
            "WAL header checksum mismatch (stored {stored:#x}, computed {computed:#x})"
        )));
    }
    let base_rows = le_u64(&head[8..16]);
    let file_attrs = le_u32(&head[16..20]) as usize;
    if file_attrs != n_attrs {
        return Err(StoreError::Format(format!(
            "WAL logs {file_attrs} attributes, table has {n_attrs}"
        )));
    }
    let mut records = Vec::new();
    let mut rows = 0u64;
    let mut torn_tail = false;
    let mut cursor = 0usize;
    let mut seq = 0u64;
    while cursor < body.len() {
        // Frame check before any allocation: a garbage length must not
        // become an allocation, just a torn tail.
        let Some(len_bytes) = body.get(cursor..cursor + 4) else {
            torn_tail = true;
            break;
        };
        let n_rows = le_u32(len_bytes) as usize;
        let payload = 4 + n_attrs * n_rows * 4;
        let Some(rec) = body.get(cursor..cursor + payload + 8) else {
            torn_tail = true;
            break;
        };
        let (data, ck) = rec.split_at(payload);
        let stored = le_u64(ck);
        if stored != fnv1a64(record_basis(seq), data) {
            torn_tail = true;
            break;
        }
        let mut cols: Vec<Vec<u32>> = Vec::with_capacity(n_attrs);
        let codes = &data[4..];
        for a in 0..n_attrs {
            let col_bytes = &codes[a * n_rows * 4..(a + 1) * n_rows * 4];
            cols.push(col_bytes.chunks_exact(4).map(le_u32).collect());
        }
        records.push(cols);
        rows += n_rows as u64;
        cursor += payload + 8;
        seq += 1;
    }
    Ok(WalReplay {
        base_rows,
        records,
        rows,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempfile::TempBlockDir;

    fn wal_path(dir: &TempBlockDir) -> PathBuf {
        dir.path().join(WAL_FILE)
    }

    #[test]
    fn decision_functions_agree_with_their_contracts() {
        assert_eq!(durable_prefix_rows([]), 0);
        assert_eq!(durable_prefix_rows([(8, true), (8, true), (8, false)]), 16);
        assert_eq!(
            durable_prefix_rows([(8, false), (8, true)]),
            0,
            "a hole ends the durable prefix even with sealed entries behind it"
        );
        // Lag-one truncation: after sealing 8 rows onto a 16-row
        // watermark, the log keeps the newest 8 sealed rows.
        assert_eq!(rotation_base(0, 24, 8), 16);
        // Never backwards, even if accounting says so.
        assert_eq!(rotation_base(20, 24, 8), 20);
        assert_eq!(rotation_base(0, 8, 8), 0);
        // Record split around the sealed watermark.
        assert_eq!(replay_split(0, 10, 0), (0, 10));
        assert_eq!(replay_split(0, 10, 4), (4, 6));
        assert_eq!(replay_split(0, 10, 10), (10, 0));
        assert_eq!(replay_split(16, 10, 4), (0, 10));
        assert_eq!(replay_split(16, 10, 20), (4, 6));
    }

    #[test]
    fn log_roundtrips_records_in_order() {
        let dir = TempBlockDir::new("wal_roundtrip");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 7, 2, 1).unwrap();
        w.append(&[&[1, 2, 3], &[4, 5, 0]], 0, 3).unwrap();
        w.append(&[&[9], &[1]], 0, 1).unwrap();
        w.append(&[&[], &[]], 0, 0).unwrap(); // no-op, no record
        assert_eq!(w.rows(), 4);
        let r = replay(&path, 2).unwrap();
        assert_eq!(r.base_rows, 7);
        assert!(!r.torn_tail);
        assert_eq!(r.rows, 4);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0], vec![vec![1, 2, 3], vec![4, 5, 0]]);
        assert_eq!(r.records[1], vec![vec![9], vec![1]]);
    }

    #[test]
    fn offset_append_logs_the_requested_rows_only() {
        let dir = TempBlockDir::new("wal_offset");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 0, 1, 0).unwrap();
        w.append(&[&[10, 11, 12, 13]], 1, 2).unwrap();
        let r = replay(&path, 1).unwrap();
        assert_eq!(r.records, vec![vec![vec![11, 12]]]);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let dir = TempBlockDir::new("wal_torn");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 0, 2, 1).unwrap();
        w.append(&[&[1, 2], &[3, 4]], 0, 2).unwrap();
        w.append(&[&[5], &[6]], 0, 1).unwrap();
        drop(w);
        // Crash mid-write of the second record: truncate into it.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let r = replay(&path, 2).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.rows, 2);
        // Corrupt (not short) tail: flip a payload byte of the last
        // record; the checksum must reject it the same way.
        let mut bytes2 = bytes.clone();
        let n = bytes2.len();
        bytes2[n - 10] ^= 0xff;
        std::fs::write(&path, &bytes2).unwrap();
        let r2 = replay(&path, 2).unwrap();
        assert!(r2.torn_tail);
        assert_eq!(r2.records.len(), 1);
    }

    #[test]
    fn garbage_length_prefix_is_a_torn_tail_not_an_allocation() {
        let dir = TempBlockDir::new("wal_garbage");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 0, 2, 1).unwrap();
        w.append(&[&[1], &[2]], 0, 1).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd n_rows
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path, 2).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 1);
    }

    #[test]
    fn corrupt_header_is_a_format_error() {
        let dir = TempBlockDir::new("wal_badheader");
        let path = wal_path(&dir);
        let w = WalWriter::create(&path, 3, 2, 1).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x01; // base_rows field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path, 2), Err(StoreError::Format(_))));
        // Attribute-count mismatch is also refused outright.
        WalWriter::create(&path, 3, 2, 1).unwrap();
        assert!(matches!(replay(&path, 5), Err(StoreError::Format(_))));
    }

    #[test]
    fn records_are_sequence_keyed() {
        // Swapping two verbatim records must fail the checksum of the
        // one that moved, exactly like a misplaced page.
        let dir = TempBlockDir::new("wal_seqkey");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 0, 1, 1).unwrap();
        w.append(&[&[1]], 0, 1).unwrap();
        w.append(&[&[2]], 0, 1).unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        let rec_len = 4 + 4 + 8;
        let body = HEADER_LEN;
        let mut swapped = bytes.clone();
        swapped[body..body + rec_len].copy_from_slice(&bytes[body + rec_len..body + 2 * rec_len]);
        swapped[body + rec_len..body + 2 * rec_len].copy_from_slice(&bytes[body..body + rec_len]);
        std::fs::write(&path, &swapped).unwrap();
        let r = replay(&path, 1).unwrap();
        assert!(r.torn_tail, "swapped record must fail its sequence key");
        assert!(r.records.is_empty());
    }

    #[test]
    fn rotation_replaces_the_log_atomically() {
        let dir = TempBlockDir::new("wal_rotate");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 0, 2, 1).unwrap();
        for k in 0..6u32 {
            w.append(&[&[k], &[k + 100]], 0, 1).unwrap();
        }
        // Rotate to base 4, retaining rows 4 and 5 as one record.
        let retained: Vec<Vec<&[u32]>> = vec![vec![&[4u32, 5][..], &[104u32, 105][..]]];
        let w2 = WalWriter::rotate_to(&path, 4, 2, 1, &retained).unwrap();
        assert_eq!(w2.base_rows(), 4);
        assert_eq!(w2.rows(), 2);
        assert_eq!(w2.path(), path.as_path());
        assert!(!tmp_sibling(&path).exists());
        let r = replay(&path, 2).unwrap();
        assert_eq!(r.base_rows, 4);
        assert_eq!(r.records, vec![vec![vec![4, 5], vec![104, 105]]]);
        // The returned writer appends to the *rotated* file.
        let mut w2 = w2;
        w2.append(&[&[6], &[106]], 0, 1).unwrap();
        let r2 = replay(&path, 2).unwrap();
        assert_eq!(r2.rows, 3);
        assert!(!r2.torn_tail);
    }

    #[test]
    fn group_fsync_counts_syncs() {
        let dir = TempBlockDir::new("wal_group");
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, 0, 1, 3).unwrap();
        let created_syncs = w.syncs();
        for k in 0..7u32 {
            w.append(&[&[k]], 0, 1).unwrap();
        }
        // 7 records at sync_every=3 → 2 group syncs (after 3 and 6).
        assert_eq!(w.syncs() - created_syncs, 2);
        // sync_every=0 never syncs on append.
        let mut w0 = WalWriter::create(&path, 0, 1, 0).unwrap();
        let base = w0.syncs();
        for k in 0..5u32 {
            w0.append(&[&[k]], 0, 1).unwrap();
        }
        assert_eq!(w0.syncs(), base);
    }
}
