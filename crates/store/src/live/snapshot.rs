//! Point-in-time snapshots of a [`crate::live::LiveTable`].
//!
//! A snapshot is the live table's unit of read isolation: a *watermark*
//! over the sealed segments (an `Arc` clone per segment — no data is
//! copied) plus a frozen copy of the active delta's tail (at most one
//! segment's worth of rows) and the exact per-attribute
//! [`BitmapIndex`]es covering precisely those rows. It implements
//! [`StorageBackend`], so everything built on the reading contract —
//! all five executors, [`crate::io::BlockReader`] /
//! [`crate::io::ShardedBlockReader`], prefetch hinting, the engine's
//! query service — runs over a snapshot **unchanged**, while writers
//! keep appending to the live table underneath.
//!
//! Consistency argument: every sealed segment is immutable from the
//! moment it is frozen, the tail is copied under the same lock that
//! serializes appends, and the bitmaps are frozen from the same locked
//! state — so a snapshot is a *prefix of the append order*, bit-for-bit
//! equal to the table a serial writer would have produced after the
//! same rows, and never observes a torn row or a half-published
//! segment. The `Mem → File` swap the sealer performs afterwards never
//! touches a snapshot: it holds its own `Arc`s.
//!
//! Segments are *variable-sized* in blocks: the sealer may coalesce a
//! run of adjacent deltas into one file, so a snapshot carries the
//! block offset where each entry starts (`seg_starts`) instead of
//! assuming one fixed segment width.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::{PageOrigin, StorageBackend};
use crate::bitmap::BitmapIndex;
use crate::block::BlockLayout;
use crate::error::Result;
use crate::live::segment::SegmentEntry;
use crate::live::zone::ZoneMap;
use crate::schema::Schema;
use crate::table::Table;

/// Accounting token charged against a live table's
/// `pinned_snapshot_bytes` gauge for the in-memory bytes one snapshot
/// keeps alive (frozen-but-unsealed segments plus its tail copy).
/// Shared by all clones of the snapshot — the charge is released once,
/// when the last clone drops, even if the table is already gone.
#[derive(Debug)]
pub(crate) struct SnapshotPin {
    bytes: u64,
    gauge: Arc<AtomicU64>,
}

impl SnapshotPin {
    pub(crate) fn new(bytes: u64, gauge: Arc<AtomicU64>) -> Self {
        gauge.fetch_add(bytes, Ordering::Relaxed);
        SnapshotPin { bytes, gauge }
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        self.gauge.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Maps a global sealed block id to the index of the segment that owns
/// it. `seg_starts` is a snapshot's block-offset table — one start per
/// segment plus a total-blocks sentinel, strictly increasing (see
/// [`crate::live::build_seg_starts`]) — and `b` must be below the
/// sentinel. Extracted so `Snapshot::locate` and the
/// `live_lifecycle` model in `fastmatch-check` resolve blocks with the
/// same arithmetic (invariant `snapshot-is-prefix`).
pub fn locate_segment(seg_starts: &[usize], b: usize) -> usize {
    debug_assert!(seg_starts.len() >= 2, "seg_starts carries a sentinel");
    debug_assert!(b < *seg_starts.last().unwrap_or(&0), "block is sealed");
    seg_starts.partition_point(|&s| s <= b) - 1
}

/// A consistent, immutable view of a live table at one instant; see the
/// [module docs](self). Cheap to clone relative to the data: segments
/// are shared by `Arc`, only the tail columns and bitmaps are owned.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) schema: Schema,
    pub(crate) tuples_per_block: usize,
    pub(crate) entries: Vec<SegmentEntry>,
    /// Block offset where each entry starts, plus one sentinel equal to
    /// the total sealed block count (`entries.len() + 1` elements;
    /// strictly increasing). Entries span differing block counts once
    /// the sealer has coalesced deltas.
    pub(crate) seg_starts: Vec<usize>,
    /// Rows covered by `entries`.
    pub(crate) sealed_rows: usize,
    /// Frozen copy of the active delta at snapshot time (one column per
    /// attribute; all rows past `sealed_rows`).
    pub(crate) tail: Vec<Vec<u32>>,
    pub(crate) n_rows: usize,
    /// Exact presence indexes over this snapshot's rows, one per
    /// attribute, shared so a service can hand them to `'static` tasks.
    pub(crate) bitmaps: Vec<Arc<BitmapIndex>>,
    /// Per-block min/max/count zone maps over this snapshot's rows,
    /// one per attribute, frozen from the same locked state as the
    /// bitmaps (see [`crate::live::zone`]).
    pub(crate) zones: Vec<Arc<ZoneMap>>,
    /// Retention accounting; see [`SnapshotPin`].
    pub(crate) pin: Arc<SnapshotPin>,
}

impl Snapshot {
    /// Rows in this snapshot (sealed + tail).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Rows covered by sealed segments (the snapshot's watermark).
    pub fn sealed_rows(&self) -> usize {
        self.sealed_rows
    }

    /// Rows in the frozen tail (appended but not yet sealed at snapshot
    /// time).
    pub fn tail_rows(&self) -> usize {
        self.n_rows - self.sealed_rows
    }

    /// Sealed segments visible to this snapshot. A coalesced seal
    /// merges several deltas into one segment, so this can be smaller
    /// than the number of deltas frozen.
    pub fn num_segments(&self) -> usize {
        self.entries.len()
    }

    /// In-memory bytes this snapshot is charged for in its parent
    /// table's `pinned_snapshot_bytes` gauge.
    pub fn pinned_bytes(&self) -> u64 {
        self.pin.bytes
    }

    /// The exact per-(value, block) presence index of one attribute,
    /// frozen at snapshot time under the append lock — equal to
    /// [`BitmapIndex::build`] over the materialized snapshot.
    pub fn bitmap(&self, attr: usize) -> &BitmapIndex {
        &self.bitmaps[attr]
    }

    /// Shared-ownership form of [`Self::bitmap`], for `'static` query
    /// jobs that must co-own their index.
    pub fn bitmap_arc(&self, attr: usize) -> Arc<BitmapIndex> {
        Arc::clone(&self.bitmaps[attr])
    }

    /// The per-block min/max/count zone map of one attribute, frozen
    /// at snapshot time under the append lock — equal to
    /// [`ZoneMap::build`] over the materialized snapshot. Conservative
    /// range-exclusion complement to [`Self::bitmap`].
    pub fn zone_map(&self, attr: usize) -> &ZoneMap {
        &self.zones[attr]
    }

    /// Shared-ownership form of [`Self::zone_map`].
    pub fn zone_map_arc(&self, attr: usize) -> Arc<ZoneMap> {
        Arc::clone(&self.zones[attr])
    }

    /// Materializes the snapshot into one in-memory [`Table`] — the
    /// "frozen copy at the same watermark" that consistency tests
    /// compare executor runs against. Reads every sealed page (and so
    /// can fail on storage errors).
    pub fn to_table(&self) -> Result<Table> {
        let mut columns: Vec<Vec<u32>> = (0..self.schema.len())
            .map(|_| Vec::with_capacity(self.n_rows))
            .collect();
        let mut buf = Vec::new();
        for (attr, col) in columns.iter_mut().enumerate() {
            for (i, entry) in self.entries.iter().enumerate() {
                match entry {
                    SegmentEntry::Mem(t) => col.extend_from_slice(t.column(attr)),
                    SegmentEntry::File(be) => {
                        for b in 0..self.seg_starts[i + 1] - self.seg_starts[i] {
                            be.read_block_into(b, attr, &mut buf)?;
                            col.extend_from_slice(&buf);
                        }
                    }
                }
            }
            col.extend_from_slice(&self.tail[attr]);
        }
        Ok(Table::new(self.schema.clone(), columns))
    }

    /// Total sealed blocks (block offset where the tail begins).
    fn sealed_blocks(&self) -> usize {
        *self.seg_starts.last().expect("seg_starts has a sentinel")
    }

    /// Maps a global block id to its location.
    fn locate(&self, b: usize) -> BlockHome<'_> {
        if b < self.sealed_blocks() {
            let seg = locate_segment(&self.seg_starts, b);
            BlockHome::Segment {
                entry: &self.entries[seg],
                local: b - self.seg_starts[seg],
            }
        } else {
            let start = b * self.tuples_per_block - self.sealed_rows;
            let end = ((b + 1) * self.tuples_per_block).min(self.n_rows) - self.sealed_rows;
            BlockHome::Tail { rows: start..end }
        }
    }
}

enum BlockHome<'s> {
    Segment {
        entry: &'s SegmentEntry,
        local: usize,
    },
    Tail {
        rows: Range<usize>,
    },
}

impl StorageBackend for Snapshot {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn layout(&self) -> BlockLayout {
        BlockLayout::new(self.n_rows, self.tuples_per_block)
    }

    fn read_block_into(&self, b: usize, attr: usize, out: &mut Vec<u32>) -> Result<PageOrigin> {
        assert!(attr < self.schema.len(), "attribute {attr} out of range");
        assert!(b < self.layout().num_blocks(), "block {b} out of range");
        match self.locate(b) {
            BlockHome::Segment {
                entry: SegmentEntry::Mem(t),
                local,
            } => {
                let tpb = self.tuples_per_block;
                out.clear();
                out.extend_from_slice(&t.column(attr)[local * tpb..(local + 1) * tpb]);
                Ok(PageOrigin::Memory)
            }
            BlockHome::Segment {
                entry: SegmentEntry::File(be),
                local,
            } => be.read_block_into(local, attr, out),
            BlockHome::Tail { rows } => {
                out.clear();
                out.extend_from_slice(&self.tail[attr][rows]);
                Ok(PageOrigin::Memory)
            }
        }
    }

    fn prefetch(&self, blocks: Range<usize>) {
        // Forward each sub-range to the file-backed segment that owns it
        // (in-memory segments and the tail have nothing to warm). Hints
        // stay advisory end to end: a segment without readahead workers
        // simply drops its share.
        let sealed = self.sealed_blocks();
        let clamped = blocks.start.min(sealed)..blocks.end.min(sealed);
        for (i, entry) in self.entries.iter().enumerate() {
            let (s, e) = (self.seg_starts[i], self.seg_starts[i + 1]);
            let lo = clamped.start.max(s);
            let hi = clamped.end.min(e);
            if lo < hi {
                if let SegmentEntry::File(be) = entry {
                    be.prefetch(lo - s..hi - s);
                }
            }
        }
    }
}
