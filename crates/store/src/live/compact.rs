//! Background compaction of live-table segment files.
//!
//! Coalescing at seal time bounds how many deltas one *write* merges,
//! but a long-lived table still accumulates segment files — and every
//! file costs a block cache, an open descriptor, and a header probe at
//! recovery. Compaction closes that end of the lifecycle: whenever the
//! number of *file-backed* entries exceeds the configured fan-in
//! ([`crate::live::LiveTableConfig::compact_fan_in`]), an adjacent run
//! of small files is merged into one and the run's entries are swapped
//! for a single file-backed entry — the same splice-under-the-state-lock
//! protocol the sealer uses for its `Mem → File` swap, so snapshots are
//! never torn: outstanding snapshot `Arc`s keep the old backends (and,
//! on Unix, their unlinked files) alive until they drop.
//!
//! Crash safety rides on the same two primitives as sealing:
//!
//! 1. the merged file is written with
//!    [`crate::file::write_table_atomic`] *over the first member's
//!    name* (rename is atomic; the old inode stays readable through
//!    already-open descriptors), and
//! 2. the remaining members are unlinked only **after** the in-memory
//!    swap and a directory fsync. A crash between the rename and the
//!    unlinks leaves the merged file plus stale members whose delta
//!    ids it *shadows* — recovery detects exactly this (a file whose
//!    first delta is below the next expected id) and sweeps it.
//!
//! Rows are never reordered, so block contents, bitmaps and zone maps
//! are all compaction-invariant — the equivalence test in
//! `store/tests/live.rs` pins this down blockwise under concurrent
//! appenders.
//!
//! Scheduling: one background thread per table (started when both a
//! segment directory and a fan-in are configured with a background
//! sealer), woken by `CompactShared::poke` after every successful
//! seal; with an inline sealer, compaction runs inline after the seal.
//! [`crate::live::LiveTable::compact_now`] drives the same loop
//! synchronously; a gate mutex serializes the two.

use std::ops::Range;
use std::sync::{Condvar, Mutex};

/// Picks the next adjacent run of segment *files* to merge, or `None`
/// when the table is already within budget. `entries` is the live
/// table's entry vector reduced to block counts: `Some(blocks)` for a
/// file-backed entry, `None` for one still in memory (compaction never
/// touches those — the sealer owns them). A merge is due only while
/// more than `fan_in` files exist; among all windows of up to `fan_in`
/// adjacent files the cheapest (fewest total blocks) is chosen, ties
/// to the left — so repeated application converges with minimal write
/// amplification and bounds the steady-state file count at `fan_in`.
///
/// Pure so the `wal_recovery` model and unit tests can exhaust it;
/// the returned range indexes `entries`.
pub fn pick_compaction(entries: &[Option<usize>], fan_in: usize) -> Option<Range<usize>> {
    if fan_in < 2 {
        return None;
    }
    let files = entries.iter().filter(|e| e.is_some()).count();
    if files <= fan_in {
        return None;
    }
    let mut best: Option<(usize, Range<usize>)> = None;
    let mut i = 0usize;
    while i < entries.len() {
        if entries[i].is_none() {
            i += 1;
            continue;
        }
        let start = i;
        while i < entries.len() && entries[i].is_some() {
            i += 1;
        }
        let w = fan_in.min(i - start);
        if w < 2 {
            continue;
        }
        for s in start..=(i - w) {
            let total: usize = entries[s..s + w].iter().map(|e| e.unwrap_or(0)).sum();
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                best = Some((total, s..s + w));
            }
        }
    }
    best.map(|(_, r)| r)
}

/// Wakeup channel between sealers and the background compactor thread:
/// a level-triggered "work may exist" flag under a condvar, so pokes
/// coalesce while a merge is in flight and shutdown is prompt.
#[derive(Debug, Default)]
pub(crate) struct CompactShared {
    signal: Mutex<CompactSignal>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct CompactSignal {
    wake: bool,
    shutdown: bool,
}

impl CompactShared {
    pub fn new() -> Self {
        CompactShared::default()
    }

    /// Signals that the file set may have grown past budget.
    pub fn poke(&self) {
        let mut g = self
            .signal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.wake = true;
        self.cv.notify_one();
    }

    /// Asks the compactor thread to exit after its current merge.
    pub fn shutdown(&self) {
        let mut g = self
            .signal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.shutdown = true;
        self.cv.notify_all();
    }

    /// Blocks until poked or shut down; returns whether the caller
    /// should run (another pass) rather than exit.
    pub fn wait(&self) -> bool {
        let mut g = self
            .signal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !g.wake && !g.shutdown {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        g.wake = false;
        !g.shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_merge_within_budget() {
        assert_eq!(pick_compaction(&[], 4), None);
        assert_eq!(pick_compaction(&[Some(1); 4], 4), None);
        assert_eq!(pick_compaction(&[Some(1), None, Some(2)], 4), None);
        // fan_in < 2 can never merge.
        assert_eq!(pick_compaction(&[Some(1); 8], 1), None);
        assert_eq!(pick_compaction(&[Some(1); 8], 0), None);
    }

    #[test]
    fn cheapest_adjacent_window_wins_ties_to_the_left() {
        // 5 files over budget 2: windows of 2; (1,1) at the end is
        // cheapest.
        let e = [Some(4), Some(4), Some(4), Some(1), Some(1)];
        assert_eq!(pick_compaction(&e, 2), Some(3..5));
        // Tie between [0..2] and [1..3]: leftmost.
        let t = [Some(2), Some(2), Some(2), Some(9)];
        assert_eq!(pick_compaction(&t, 2), Some(0..2));
    }

    #[test]
    fn mem_entries_break_runs() {
        // Budget 2, three files but split by a Mem entry: only the
        // adjacent pair merges.
        let e = [Some(1), None, Some(5), Some(5)];
        assert_eq!(pick_compaction(&e, 2), Some(2..4));
        // A lone file between Mem entries can never be in a window.
        let lone = [None, Some(1), None, Some(1), None, Some(1)];
        assert_eq!(pick_compaction(&lone, 2), None);
    }

    #[test]
    fn window_width_caps_at_fan_in() {
        let e = [Some(1); 6];
        assert_eq!(pick_compaction(&e, 4), Some(0..4));
    }

    #[test]
    fn poke_wakes_and_shutdown_stops() {
        let shared = std::sync::Arc::new(CompactShared::new());
        let worker = std::sync::Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let mut passes = 0;
            while worker.wait() {
                passes += 1;
            }
            passes
        });
        shared.poke();
        // Wait until the poke is consumed, then stop.
        loop {
            let consumed = {
                let g = shared.signal.lock().unwrap();
                !g.wake
            };
            if consumed {
                break;
            }
            std::thread::yield_now();
        }
        shared.shutdown();
        assert!(handle.join().unwrap() >= 1);
    }
}
