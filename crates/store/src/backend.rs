//! The pluggable storage abstraction behind all block I/O.
//!
//! [`StorageBackend`] is the seam between the executors and the physical
//! representation of a table: everything above it ([`crate::io::BlockReader`],
//! the engine's executors) requests *blocks of dictionary codes* and never
//! learns whether those codes live in RAM ([`MemBackend`]), in a
//! checksummed column file ([`crate::file::FileBackend`]), or — in the
//! future — behind an mmap or async fetch path. Backends are read-side
//! shared state: they take `&self` and must be [`Sync`], because the
//! sharded executors hit one backend from many worker threads at once.

use crate::block::BlockLayout;
use crate::error::Result;
use crate::schema::Schema;
use crate::table::Table;

/// Where a page read was served from — the attribution a backend reports
/// per read so shared-cache behavior can be charged to the reader (and,
/// through [`crate::io::IoStats`], to the query) that caused it.
///
/// `Memory` is for backends with no cache tier at all (the in-memory
/// table view): such reads are neither hits nor misses and are not
/// counted toward cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOrigin {
    /// Served directly from an in-memory representation (no cache tier).
    Memory,
    /// Served from the backend's block cache.
    CacheHit,
    /// Served from the backend's block cache, from a page a readahead
    /// worker loaded ([`StorageBackend::prefetch`]) that had not yet been
    /// demand-hit. Each prefetched page reports this at most once — its
    /// first demand hit — so the count measures *useful* prefetches;
    /// later re-hits are plain [`Self::CacheHit`]s.
    PrefetchedHit,
    /// Fetched from the underlying medium (disk, network, …).
    CacheMiss,
}

/// A source of table blocks: schema + block geometry + a fallible
/// block-page read primitive.
///
/// Implementations must be safe to share across threads (`Send + Sync`);
/// reads of distinct or identical blocks may happen concurrently, and
/// shared-ownership readers ([`crate::io::BlockReader::over_shared`])
/// move `Arc`-wrapped backends between worker threads.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// The stored table's schema (attribute names and cardinalities).
    fn schema(&self) -> &Schema;

    /// The block geometry the data is stored under.
    fn layout(&self) -> BlockLayout;

    /// Reads the codes of attribute `attr` in block `b` into `out`
    /// (cleared first). On success `out` holds exactly
    /// `layout().block_len(b)` codes, and the returned [`PageOrigin`]
    /// says where the page came from (cache attribution).
    fn read_block_into(&self, b: usize, attr: usize, out: &mut Vec<u32>) -> Result<PageOrigin>;

    /// Reads the aligned code pages of two attributes of block `b` — the
    /// shape every histogram-matching executor consumes. Returns the
    /// per-page origins `[z page, x page]`.
    fn read_block_pair_into(
        &self,
        b: usize,
        z_attr: usize,
        x_attr: usize,
        zs: &mut Vec<u32>,
        xs: &mut Vec<u32>,
    ) -> Result<[PageOrigin; 2]> {
        let oz = self.read_block_into(b, z_attr, zs)?;
        let ox = self.read_block_into(b, x_attr, xs)?;
        Ok([oz, ox])
    }

    /// Advisory readahead hint: the caller expects to read every block of
    /// `blocks` soon, so the backend may warm whatever cache tier it has
    /// ahead of the demand reads. Purely an optimization seam:
    ///
    /// * hints carry **no obligation** — a backend may batch, truncate or
    ///   drop them entirely (the default implementation, and
    ///   [`MemBackend`], do nothing);
    /// * hints carry **no correctness weight** — a stale or wrong hint at
    ///   worst warms pages nobody reads; demand reads never depend on a
    ///   hint having been honored.
    ///
    /// Callers are expected to be *demand-aware*: hint only blocks that
    /// block-selection policies actually marked for reading, never blocks
    /// they decided to skip.
    fn prefetch(&self, blocks: std::ops::Range<usize>) {
        let _ = blocks;
    }

    /// Number of rows stored.
    fn n_rows(&self) -> usize {
        self.layout().n_rows()
    }

    /// Cardinality of one attribute (shorthand over [`Self::schema`]).
    fn cardinality(&self, attr: usize) -> u32 {
        self.schema().attr(attr).cardinality
    }
}

/// The in-memory backend: a view over a [`Table`] under a chosen layout.
///
/// This is the seed system's original storage regime, now behind the
/// trait; block "reads" are column-slice copies, so any latency model
/// (e.g. [`crate::io::BlockReader::with_simulated_latency`]) is layered
/// on top by the reader, not the backend.
#[derive(Debug, Clone, Copy)]
pub struct MemBackend<'a> {
    table: &'a Table,
    layout: BlockLayout,
}

impl<'a> MemBackend<'a> {
    /// Creates a view of `table` under `layout`.
    ///
    /// # Panics
    /// Panics if the layout's row count disagrees with the table's.
    pub fn new(table: &'a Table, layout: BlockLayout) -> Self {
        assert_eq!(table.n_rows(), layout.n_rows(), "layout/table mismatch");
        MemBackend { table, layout }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }
}

impl StorageBackend for MemBackend<'_> {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn layout(&self) -> BlockLayout {
        self.layout
    }

    fn read_block_into(&self, b: usize, attr: usize, out: &mut Vec<u32>) -> Result<PageOrigin> {
        let range = self.layout.rows_of_block(b);
        out.clear();
        out.extend_from_slice(&self.table.column(attr)[range]);
        Ok(PageOrigin::Memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;

    fn table() -> Table {
        let schema = Schema::new(vec![AttrDef::new("z", 4), AttrDef::new("x", 2)]);
        let z: Vec<u32> = (0..10).map(|r| r % 4).collect();
        let x: Vec<u32> = (0..10).map(|r| r % 2).collect();
        Table::new(schema, vec![z, x])
    }

    #[test]
    fn mem_backend_reads_match_columns() {
        let t = table();
        let layout = BlockLayout::new(10, 4);
        let be = MemBackend::new(&t, layout);
        assert_eq!(be.n_rows(), 10);
        assert_eq!(be.cardinality(0), 4);
        let mut buf = Vec::new();
        for b in 0..layout.num_blocks() {
            be.read_block_into(b, 0, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), &t.column(0)[layout.rows_of_block(b)]);
        }
    }

    #[test]
    fn pair_reads_are_row_aligned() {
        let t = table();
        let be = MemBackend::new(&t, BlockLayout::new(10, 3));
        let (mut zs, mut xs) = (Vec::new(), Vec::new());
        be.read_block_pair_into(1, 0, 1, &mut zs, &mut xs).unwrap();
        assert_eq!(zs, &t.column(0)[3..6]);
        assert_eq!(xs, &t.column(1)[3..6]);
    }

    #[test]
    #[should_panic(expected = "layout/table mismatch")]
    fn mismatched_layout_panics() {
        let t = table();
        MemBackend::new(&t, BlockLayout::new(12, 4));
    }
}
