//! Table schemas: named, dictionary-encoded categorical attributes.

/// Definition of one attribute: a name and the cardinality of its value
/// dictionary. Values are stored as codes `0..cardinality`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name (e.g. `"Origin"`).
    pub name: String,
    /// Dictionary cardinality `|V_A|`.
    pub cardinality: u32,
}

impl AttrDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cardinality: u32) -> Self {
        AttrDef {
            name: name.into(),
            cardinality,
        }
    }
}

/// An ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Builds a schema from attribute definitions.
    pub fn new(attrs: Vec<AttrDef>) -> Self {
        Schema { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute definition by index.
    pub fn attr(&self, idx: usize) -> &AttrDef {
        &self.attrs[idx]
    }

    /// All attributes.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Looks up an attribute index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            AttrDef::new("Origin", 347),
            AttrDef::new("DepartureHour", 24),
        ]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("Origin"), Some(0));
        assert_eq!(s.index_of("DepartureHour"), Some(1));
        assert_eq!(s.index_of("Nope"), None);
        assert_eq!(s.attr(1).cardinality, 24);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.index_of("x"), None);
    }
}
