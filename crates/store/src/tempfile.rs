//! Self-deleting scratch paths for block files.
//!
//! Tests, benches and examples that exercise [`crate::file::FileBackend`]
//! need a unique path under the system temp directory and must remove the
//! file afterwards — including when an assertion panics halfway through,
//! where a trailing `remove_file` would never run and the file would leak
//! into `$TMPDIR`. [`TempBlockFile`] is the RAII form of that pattern:
//! the path is unique per (process, instance), and the file (if any) is
//! removed on drop, panic or not.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-process uniquifier so concurrent tests in one binary never collide.
static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch path in the system temp directory whose file is
/// removed when the guard is dropped (even on panic). The guard does not
/// create the file; whoever writes it (e.g.
/// [`crate::file::write_table`]) does.
#[derive(Debug)]
pub struct TempBlockFile {
    path: PathBuf,
}

impl TempBlockFile {
    /// Creates a guard for `{temp_dir}/fastmatch_{tag}_{pid}_{n}.fmb`.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "fastmatch_{tag}_{}_{}.fmb",
            std::process::id(),
            NEXT_ID.fetch_add(1, Ordering::Relaxed)
        ));
        TempBlockFile { path }
    }

    /// The guarded path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempBlockFile {
    fn drop(&mut self) {
        // Best-effort: the file may legitimately not exist (nothing was
        // written, or a test removed it itself).
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A unique scratch *directory* in the system temp dir, removed
/// recursively on drop (even on panic) — the segment-directory twin of
/// [`TempBlockFile`], for tests and benches exercising
/// [`crate::live::LiveTable`]'s sealed segment files. The directory is
/// created eagerly so callers can hand the path straight to a sealer.
#[derive(Debug)]
pub struct TempBlockDir {
    path: PathBuf,
}

impl TempBlockDir {
    /// Creates `{temp_dir}/fastmatch_{tag}_{pid}_{n}.d/` and a guard that
    /// removes it (and everything inside) on drop.
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "fastmatch_{tag}_{}_{}.d",
            std::process::id(),
            NEXT_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("creating temp block dir");
        TempBlockDir { path }
    }

    /// The guarded directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempBlockDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_unique() {
        let a = TempBlockFile::new("uniq");
        let b = TempBlockFile::new("uniq");
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn drop_removes_the_file() {
        let path = {
            let guard = TempBlockFile::new("dropped");
            std::fs::write(guard.path(), b"scratch").unwrap();
            assert!(guard.path().exists());
            guard.path().to_path_buf()
        };
        assert!(!path.exists(), "guard must remove the file on drop");
    }

    #[test]
    fn drop_tolerates_missing_files() {
        let guard = TempBlockFile::new("never_written");
        drop(guard); // must not panic
    }

    #[test]
    fn dir_guard_removes_recursively() {
        let path = {
            let guard = TempBlockDir::new("dirguard");
            std::fs::write(guard.path().join("seg000.fmb"), b"x").unwrap();
            assert!(guard.path().is_dir());
            guard.path().to_path_buf()
        };
        assert!(!path.exists(), "guard must remove the directory on drop");
    }

    #[test]
    fn drop_removes_on_panic_too() {
        let path = TempBlockFile::new("panicking");
        let p = path.path().to_path_buf();
        let result = std::panic::catch_unwind(move || {
            std::fs::write(path.path(), b"x").unwrap();
            panic!("assertion failure mid-test");
        });
        assert!(result.is_err());
        assert!(!p.exists(), "file must be gone after the panic unwound");
    }
}
