//! # fastmatch-store
//!
//! The storage substrate FastMatch runs on (paper §4): a column-oriented
//! in-memory engine with
//!
//! * dictionary-encoded columns grouped into a [`table::Table`];
//! * a fixed block granularity ([`block::BlockLayout`]) at which all I/O
//!   requests are serviced;
//! * the random-permutation preprocessing step that turns sequential block
//!   scans into uniform without-replacement samples ([`shuffle`]);
//! * one-bit-per-(value, block) bitmap indexes used by the AnyActive block
//!   selection policy ([`bitmap::BitmapIndex`]);
//! * per-block count *density maps* for boolean-predicate candidates
//!   (Appendix A.1.2, [`density::DensityMap`]);
//! * boolean predicates over attribute values ([`predicate::Predicate`]);
//! * equal-width binning of continuous attributes (Appendix A.1.4 / A.1.6,
//!   [`binning::Binner`]);
//! * a pluggable storage abstraction ([`backend::StorageBackend`]) with
//!   two implementations — the in-memory table view
//!   ([`backend::MemBackend`]) and a checksummed on-disk columnar block
//!   file with a bounded, sharded block cache and a demand-aware
//!   background readahead pool fed by advisory
//!   [`backend::StorageBackend::prefetch`] hints
//!   ([`file::FileBackend`]) — plus fallible storage errors
//!   ([`error::StoreError`]);
//! * **live tables** ([`live::LiveTable`]): append ingestion into an
//!   in-memory delta that seals into immutable checksummed segments,
//!   serving cheap snapshot-isolated [`live::Snapshot`] views that
//!   implement the same [`backend::StorageBackend`] reading contract —
//!   queries run unchanged over a point-in-time view while writers keep
//!   appending;
//! * a block reader over any backend that accounts blocks read/skipped
//!   and tuples touched, with an optional simulated per-block latency so
//!   storage-media cost models can be explored ([`io::BlockReader`]), and
//!   shardable into disjoint block-range views with per-shard,
//!   aggregatable statistics for multi-core executors
//!   ([`io::ShardedBlockReader`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod binning;
pub mod bitmap;
pub mod block;
pub mod density;
pub mod error;
pub mod file;
pub mod io;
pub mod live;
pub mod predicate;
pub mod schema;
pub mod shuffle;
pub mod table;
pub mod tempfile;

pub use backend::{MemBackend, PageOrigin, StorageBackend};
pub use binning::Binner;
pub use bitmap::BitmapIndex;
pub use block::BlockLayout;
pub use density::DensityMap;
pub use error::StoreError;
pub use file::{write_table, write_table_atomic, CacheStats, FileBackend};
pub use io::{BlockReader, IoStats, ShardedBlockReader};
pub use live::{LiveStats, LiveTable, LiveTableConfig, Snapshot, ZoneMap};
pub use predicate::Predicate;
pub use schema::{AttrDef, Schema};
pub use table::Table;
pub use tempfile::{TempBlockDir, TempBlockFile};
