//! One-bit-per-(value, block) bitmap indexes (paper §4.1).
//!
//! For an attribute `A` and each attribute value `v`, the index stores one
//! bit per block: bit `b` is set iff block `b` contains at least one tuple
//! with `A = v`. This lets the sampling engine test "does this block
//! contain samples for candidate `v`?" in O(1), which is the primitive the
//! AnyActive block selection policy is built on. Storing a bit per *block*
//! (not per tuple, as earlier systems did) makes the index orders of
//! magnitude smaller.
//!
//! [`BitmapIndex::mark_active_range`] is the cache-conscious lookahead
//! primitive of Algorithm 3: for one candidate it ORs a whole range of
//! blocks into a mark array, consuming each cache line of the bitmap once,
//! instead of the bit-at-a-time access pattern of Algorithm 2 that evicts
//! the line between candidates.

use crate::block::BlockLayout;
use crate::table::Table;

/// Per-value, per-block presence bitmap for a single attribute.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    num_values: usize,
    num_blocks: usize,
    /// Words per value row.
    stride: usize,
    /// `words[v * stride + w]` holds blocks `64w .. 64w+63` for value `v`.
    words: Vec<u64>,
}

impl BitmapIndex {
    /// Builds the index for `attr` of `table` under the given layout.
    pub fn build(table: &Table, attr: usize, layout: &BlockLayout) -> Self {
        assert_eq!(table.n_rows(), layout.n_rows(), "layout/table mismatch");
        let num_values = table.cardinality(attr) as usize;
        let num_blocks = layout.num_blocks();
        let stride = num_blocks.div_ceil(64);
        let mut words = vec![0u64; num_values * stride];
        let col = table.column(attr);
        for b in 0..num_blocks {
            let (word, bit) = (b / 64, b % 64);
            for r in layout.rows_of_block(b) {
                let v = col[r] as usize;
                words[v * stride + word] |= 1u64 << bit;
            }
        }
        BitmapIndex {
            num_values,
            num_blocks,
            stride,
            words,
        }
    }

    /// Assembles an index directly from per-value presence rows — the
    /// constructor behind [`crate::live`]'s incrementally maintained
    /// bitmaps, where bits are set at append time instead of by a table
    /// scan. `rows[v]` holds the presence words of value `v` (bit `b%64`
    /// of word `b/64` ⇔ some row with value `v` lies in block `b`); rows
    /// shorter than the stride are zero-padded, longer ones must carry no
    /// bits at or beyond `num_blocks`.
    ///
    /// # Panics
    /// Panics if `rows.len() != num_values` or a row sets a bit for a
    /// block `>= num_blocks` (the caller handed over bits from rows that
    /// are not part of the index's view).
    pub(crate) fn from_value_rows(num_values: usize, num_blocks: usize, rows: &[Vec<u64>]) -> Self {
        assert_eq!(rows.len(), num_values, "one presence row per value");
        let stride = num_blocks.div_ceil(64);
        let mut words = vec![0u64; num_values * stride];
        for (v, row) in rows.iter().enumerate() {
            for (w, &bits) in row.iter().enumerate() {
                if w >= stride {
                    assert_eq!(bits, 0, "value {v} has bits beyond block {num_blocks}");
                    continue;
                }
                if w + 1 == stride && !num_blocks.is_multiple_of(64) {
                    let valid = (1u64 << (num_blocks % 64)) - 1;
                    assert_eq!(
                        bits & !valid,
                        0,
                        "value {v} has bits beyond block {num_blocks}"
                    );
                }
                words[v * stride + w] = bits;
            }
        }
        BitmapIndex {
            num_values,
            num_blocks,
            stride,
            words,
        }
    }

    /// Number of distinct values indexed.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Number of blocks indexed.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Whether block `b` contains at least one tuple with the value `v`.
    #[inline]
    pub fn block_has(&self, v: u32, b: usize) -> bool {
        debug_assert!((v as usize) < self.num_values && b < self.num_blocks);
        let (word, bit) = (b / 64, b % 64);
        self.words[v as usize * self.stride + word] >> bit & 1 == 1
    }

    /// ORs the presence bits of value `v` for blocks
    /// `start .. start + marks.len()` into `marks` (Algorithm 3's inner
    /// loop). Blocks beyond the end of the index leave their mark slot
    /// untouched.
    pub fn mark_active_range(&self, v: u32, start: usize, marks: &mut [bool]) {
        let row = &self.words[v as usize * self.stride..(v as usize + 1) * self.stride];
        let end = (start + marks.len()).min(self.num_blocks);
        let mut b = start;
        while b < end {
            let word = row[b / 64];
            if word == 0 {
                // skip the rest of this word in one step
                b = (b / 64 + 1) * 64;
                continue;
            }
            if word >> (b % 64) & 1 == 1 {
                marks[b - start] = true;
            }
            b += 1;
        }
    }

    /// Index memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Number of blocks containing value `v` (popcount of its row).
    pub fn blocks_with_value(&self, v: u32) -> usize {
        self.words[v as usize * self.stride..(v as usize + 1) * self.stride]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};

    fn table_with_pattern() -> (Table, BlockLayout) {
        // 40 rows, block size 10 ⇒ 4 blocks.
        // value 0: rows 0..10 (block 0 only)
        // value 1: rows 10..20 and row 35 (blocks 1, 3)
        // value 2: everywhere else (blocks 2, 3)
        let mut col = Vec::with_capacity(40);
        for r in 0..40u32 {
            let v = if r < 10 {
                0
            } else if r < 20 || r == 35 {
                1
            } else {
                2
            };
            col.push(v);
        }
        let schema = Schema::new(vec![AttrDef::new("z", 3)]);
        let t = Table::new(schema, vec![col]);
        let l = BlockLayout::new(40, 10);
        (t, l)
    }

    #[test]
    fn bits_reflect_block_membership() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        assert_eq!(idx.num_blocks(), 4);
        assert_eq!(idx.num_values(), 3);
        assert!(idx.block_has(0, 0));
        assert!(!idx.block_has(0, 1));
        assert!(!idx.block_has(0, 2));
        assert!(!idx.block_has(0, 3));
        assert!(idx.block_has(1, 1));
        assert!(idx.block_has(1, 3));
        assert!(!idx.block_has(1, 0));
        assert!(idx.block_has(2, 2));
        assert!(idx.block_has(2, 3));
    }

    #[test]
    fn blocks_with_value_counts() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        assert_eq!(idx.blocks_with_value(0), 1);
        assert_eq!(idx.blocks_with_value(1), 2);
        assert_eq!(idx.blocks_with_value(2), 2);
    }

    #[test]
    fn mark_active_range_matches_block_has() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        for v in 0..3u32 {
            let mut marks = vec![false; 4];
            idx.mark_active_range(v, 0, &mut marks);
            for (b, &m) in marks.iter().enumerate() {
                assert_eq!(m, idx.block_has(v, b), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn mark_active_range_respects_window() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        // window [1, 3): value 1 present in block 1, absent in block 2
        let mut marks = vec![false; 2];
        idx.mark_active_range(1, 1, &mut marks);
        assert_eq!(marks, vec![true, false]);
    }

    #[test]
    fn mark_active_range_ors_rather_than_overwrites() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        let mut marks = vec![false; 4];
        idx.mark_active_range(0, 0, &mut marks); // block 0
        idx.mark_active_range(2, 0, &mut marks); // blocks 2, 3
        assert_eq!(marks, vec![true, false, true, true]);
    }

    #[test]
    fn window_past_end_is_safe() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        let mut marks = vec![false; 10];
        idx.mark_active_range(2, 2, &mut marks);
        assert_eq!(&marks[..2], &[true, true]);
        assert!(marks[2..].iter().all(|&m| !m));
    }

    #[test]
    fn large_block_count_crosses_word_boundaries() {
        // 1000 rows, 1-row blocks ⇒ 1000 blocks > 64: exercises multi-word
        // rows and the skip-zero-word fast path.
        let n = 1000usize;
        let col: Vec<u32> = (0..n as u32)
            .map(|r| if r % 97 == 0 { 1 } else { 0 })
            .collect();
        let schema = Schema::new(vec![AttrDef::new("z", 2)]);
        let t = Table::new(schema, vec![col]);
        let l = BlockLayout::new(n, 1);
        let idx = BitmapIndex::build(&t, 0, &l);
        let mut marks = vec![false; n];
        idx.mark_active_range(1, 0, &mut marks);
        for (b, &m) in marks.iter().enumerate() {
            assert_eq!(m, b % 97 == 0, "b = {b}");
            assert_eq!(idx.block_has(1, b), b % 97 == 0);
        }
    }

    #[test]
    fn size_is_one_bit_per_value_block() {
        let (t, l) = table_with_pattern();
        let idx = BitmapIndex::build(&t, 0, &l);
        // 3 values × 1 word stride
        assert_eq!(idx.size_bytes(), 3 * 8);
    }
}
