//! Equal-width binning of continuous attributes (Appendix A.1.4 / A.1.6).
//!
//! Continuous grouping attributes (e.g. departure time) are binned into a
//! fixed number of buckets before histogramming; continuous *candidate*
//! attributes (e.g. pickup longitude/latitude) are binned to form the
//! candidate domain. The binner turns an `f64` into a dictionary code.

/// Equal-width binner over `[min, max]` with `bins` buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    min: f64,
    max: f64,
    bins: u32,
    width: f64,
}

impl Binner {
    /// Creates a binner over `[min, max]` with the given bucket count.
    ///
    /// # Panics
    /// Panics unless `min < max` and `bins ≥ 1`.
    pub fn equal_width(min: f64, max: f64, bins: u32) -> Self {
        assert!(min < max, "need min < max");
        assert!(bins >= 1, "need at least one bin");
        Binner {
            min,
            max,
            bins,
            width: (max - min) / bins as f64,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> u32 {
        self.bins
    }

    /// Maps a value to its bin code; values outside the range clamp to the
    /// first/last bin (the generators drop true outliers before binning,
    /// matching the paper's preprocessing).
    pub fn code(&self, v: f64) -> u32 {
        if v <= self.min {
            return 0;
        }
        if v >= self.max {
            return self.bins - 1;
        }
        (((v - self.min) / self.width) as u32).min(self.bins - 1)
    }

    /// The half-open value range `[lo, hi)` of a bin (the last bin is
    /// closed at `max`).
    pub fn bin_range(&self, code: u32) -> (f64, f64) {
        assert!(code < self.bins, "bin {code} out of range");
        let lo = self.min + code as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Coarsens to `coarse_bins` by merging adjacent bins; `coarse_bins`
    /// must divide `bins` (Appendix A.1.6: fine-granularity bitmaps induce
    /// any coarser granularity).
    pub fn coarsen_code(&self, code: u32, coarse_bins: u32) -> u32 {
        assert!(
            coarse_bins >= 1 && self.bins.is_multiple_of(coarse_bins),
            "coarse bins must divide fine bins"
        );
        code / (self.bins / coarse_bins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_cover_the_range() {
        let b = Binner::equal_width(0.0, 24.0, 24);
        assert_eq!(b.code(0.0), 0);
        assert_eq!(b.code(0.5), 0);
        assert_eq!(b.code(1.0), 1);
        assert_eq!(b.code(23.9), 23);
        assert_eq!(b.code(24.0), 23);
    }

    #[test]
    fn out_of_range_clamps() {
        let b = Binner::equal_width(0.0, 10.0, 5);
        assert_eq!(b.code(-3.0), 0);
        assert_eq!(b.code(99.0), 4);
    }

    #[test]
    fn bin_ranges_partition() {
        let b = Binner::equal_width(-1.0, 1.0, 4);
        let (lo0, hi0) = b.bin_range(0);
        let (lo1, _) = b.bin_range(1);
        assert!((lo0 - -1.0).abs() < 1e-12);
        assert!((hi0 - lo1).abs() < 1e-12);
        let (_, hi3) = b.bin_range(3);
        assert!((hi3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_bin_of_range_midpoint() {
        let b = Binner::equal_width(0.0, 100.0, 10);
        for code in 0..10 {
            let (lo, hi) = b.bin_range(code);
            assert_eq!(b.code((lo + hi) / 2.0), code);
        }
    }

    #[test]
    fn coarsening_merges_adjacent() {
        let b = Binner::equal_width(0.0, 24.0, 24);
        // 24 fine bins → 4 coarse (quarters of the day)
        assert_eq!(b.coarsen_code(0, 4), 0);
        assert_eq!(b.coarsen_code(5, 4), 0);
        assert_eq!(b.coarsen_code(6, 4), 1);
        assert_eq!(b.coarsen_code(23, 4), 3);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn coarsen_requires_divisibility() {
        Binner::equal_width(0.0, 24.0, 24).coarsen_code(0, 5);
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn degenerate_range_panics() {
        Binner::equal_width(1.0, 1.0, 4);
    }
}
