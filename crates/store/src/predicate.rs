//! Boolean predicates over attribute values.
//!
//! Definition 1's histogram-generating queries select candidates with
//! `Z = zᵢ`; Appendix A.1.2 generalizes candidates to arbitrary AND/OR
//! predicates over several attributes (e.g. `(nationality, religion)`
//! pairs of Q3). Predicates evaluate per row, and can be tested per block
//! conservatively through bitmap indexes.

use crate::bitmap::BitmapIndex;
use crate::live::zone::ZoneMap;
use crate::table::Table;

/// A boolean predicate over a table's attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `attr = value`.
    Eq {
        /// Attribute index.
        attr: usize,
        /// Dictionary code to match.
        value: u32,
    },
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `attr = value`.
    pub fn eq(attr: usize, value: u32) -> Self {
        Predicate::Eq { attr, value }
    }

    /// Exact row-level evaluation.
    pub fn matches_row(&self, table: &Table, row: usize) -> bool {
        match self {
            Predicate::Eq { attr, value } => table.code(*attr, row) == *value,
            Predicate::And(parts) => parts.iter().all(|p| p.matches_row(table, row)),
            Predicate::Or(parts) => parts.iter().any(|p| p.matches_row(table, row)),
        }
    }

    /// Conservative block-level test through bitmap indexes: returns false
    /// only when the block provably contains no matching tuple. `indexes`
    /// must carry `(attr, index)` pairs for the attributes consulted;
    /// attributes without an index conservatively report "maybe".
    pub fn may_match_block(&self, indexes: &[(usize, &BitmapIndex)], block: usize) -> bool {
        match self {
            Predicate::Eq { attr, value } => indexes
                .iter()
                .find(|(a, _)| a == attr)
                .map(|(_, idx)| idx.block_has(*value, block))
                .unwrap_or(true),
            Predicate::And(parts) => parts.iter().all(|p| p.may_match_block(indexes, block)),
            Predicate::Or(parts) => {
                parts.is_empty() || parts.iter().any(|p| p.may_match_block(indexes, block))
            }
        }
    }

    /// Conservative block-level test through zone maps
    /// ([`crate::live::ZoneMap`]): returns false only when every
    /// consulted zone's min/max bound provably excludes a match.
    /// Complementary to [`Self::may_match_block`] — bitmaps answer
    /// per-value presence exactly where they exist, zones answer range
    /// exclusion for ordered (binned) dictionaries — and composable
    /// with it: both tests are conservative, so their conjunction is
    /// too. `zones` carries `(attr, map)` pairs; attributes without a
    /// zone map conservatively report "maybe".
    pub fn may_match_block_zones(&self, zones: &[(usize, &ZoneMap)], block: usize) -> bool {
        match self {
            Predicate::Eq { attr, value } => zones
                .iter()
                .find(|(a, _)| a == attr)
                .map(|(_, zm)| zm.may_contain(block, *value))
                .unwrap_or(true),
            Predicate::And(parts) => parts.iter().all(|p| p.may_match_block_zones(zones, block)),
            Predicate::Or(parts) => {
                parts.is_empty() || parts.iter().any(|p| p.may_match_block_zones(zones, block))
            }
        }
    }

    /// All attribute indices the predicate mentions (with duplicates
    /// removed, in first-mention order).
    pub fn attrs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::Eq { attr, .. } => {
                if !out.contains(attr) {
                    out.push(*attr);
                }
            }
            Predicate::And(parts) | Predicate::Or(parts) => {
                for p in parts {
                    p.collect_attrs(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockLayout;
    use crate::schema::{AttrDef, Schema};

    fn table() -> Table {
        // rows: (a, b) = (0,0) (0,1) (1,0) (1,1)
        let schema = Schema::new(vec![AttrDef::new("a", 2), AttrDef::new("b", 2)]);
        Table::new(schema, vec![vec![0, 0, 1, 1], vec![0, 1, 0, 1]])
    }

    #[test]
    fn eq_matches_rows() {
        let t = table();
        let p = Predicate::eq(0, 1);
        assert!(!p.matches_row(&t, 0));
        assert!(p.matches_row(&t, 2));
    }

    #[test]
    fn and_or_semantics() {
        let t = table();
        let and = Predicate::And(vec![Predicate::eq(0, 1), Predicate::eq(1, 1)]);
        assert!(and.matches_row(&t, 3));
        assert!(!and.matches_row(&t, 2));
        let or = Predicate::Or(vec![Predicate::eq(0, 0), Predicate::eq(1, 1)]);
        assert!(or.matches_row(&t, 0));
        assert!(or.matches_row(&t, 3));
        assert!(!or.matches_row(&t, 2));
    }

    #[test]
    fn empty_connectives() {
        let t = table();
        assert!(Predicate::And(vec![]).matches_row(&t, 0));
        assert!(!Predicate::Or(vec![]).matches_row(&t, 0));
    }

    #[test]
    fn block_test_is_conservative_and_exact_for_eq() {
        let t = table();
        let l = BlockLayout::new(4, 2);
        let idx = BitmapIndex::build(&t, 0, &l);
        let p = Predicate::eq(0, 0);
        assert!(p.may_match_block(&[(0, &idx)], 0));
        assert!(!p.may_match_block(&[(0, &idx)], 1));
    }

    #[test]
    fn block_test_without_index_says_maybe() {
        let p = Predicate::eq(1, 0);
        assert!(p.may_match_block(&[], 0));
    }

    #[test]
    fn block_test_never_false_negative() {
        let t = table();
        let l = BlockLayout::new(4, 2);
        let idx_a = BitmapIndex::build(&t, 0, &l);
        let idx_b = BitmapIndex::build(&t, 1, &l);
        let indexes = [(0usize, &idx_a), (1usize, &idx_b)];
        let preds = vec![
            Predicate::And(vec![Predicate::eq(0, 1), Predicate::eq(1, 0)]),
            Predicate::Or(vec![Predicate::eq(0, 0), Predicate::eq(1, 1)]),
            Predicate::eq(1, 1),
        ];
        for p in &preds {
            for b in 0..l.num_blocks() {
                let truth = l.rows_of_block(b).any(|r| p.matches_row(&t, r));
                if truth {
                    assert!(p.may_match_block(&indexes, b), "{p:?} block {b}");
                }
            }
        }
    }

    #[test]
    fn zone_block_test_is_conservative_and_skips_excluded_ranges() {
        let t = table();
        let l = BlockLayout::new(4, 2);
        let zm_a = ZoneMap::build(&t, 0, &l);
        let zm_b = ZoneMap::build(&t, 1, &l);
        let zones = [(0usize, &zm_a), (1usize, &zm_b)];
        // Block 0 holds a ∈ {0}, block 1 holds a ∈ {1}.
        assert!(Predicate::eq(0, 0).may_match_block_zones(&zones, 0));
        assert!(!Predicate::eq(0, 1).may_match_block_zones(&zones, 0));
        assert!(!Predicate::eq(0, 0).may_match_block_zones(&zones, 1));
        // No zone map for the attribute → maybe.
        assert!(Predicate::eq(7, 3).may_match_block_zones(&zones, 0));
        // Never a false negative, over all connectives.
        let preds = vec![
            Predicate::And(vec![Predicate::eq(0, 1), Predicate::eq(1, 0)]),
            Predicate::Or(vec![Predicate::eq(0, 0), Predicate::eq(1, 1)]),
            Predicate::eq(1, 1),
            Predicate::Or(vec![]),
        ];
        for p in &preds {
            for b in 0..l.num_blocks() {
                if l.rows_of_block(b).any(|r| p.matches_row(&t, r)) {
                    assert!(p.may_match_block_zones(&zones, b), "{p:?} block {b}");
                }
            }
        }
    }

    #[test]
    fn attrs_are_collected_once() {
        let p = Predicate::And(vec![
            Predicate::eq(2, 0),
            Predicate::Or(vec![Predicate::eq(0, 1), Predicate::eq(2, 1)]),
        ]);
        assert_eq!(p.attrs(), vec![2, 0]);
    }
}
