//! Block layout: the granularity at which I/O is requested and at which
//! bitmap indexes are maintained.
//!
//! The paper sets the per-column block size to 600 bytes (§5.2) — 150
//! four-byte codes. We default to the same tuple count but make it
//! configurable; experiments show results are not very sensitive to this
//! choice (as the paper also observes).

use std::ops::Range;

/// Default number of tuples per block (600 bytes of 4-byte codes).
pub const DEFAULT_TUPLES_PER_BLOCK: usize = 150;

/// Maps row indices to fixed-size blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    n_rows: usize,
    tuples_per_block: usize,
}

impl BlockLayout {
    /// Creates a layout over `n_rows` rows with the given block size.
    ///
    /// # Panics
    /// Panics if `tuples_per_block` is zero.
    pub fn new(n_rows: usize, tuples_per_block: usize) -> Self {
        assert!(tuples_per_block > 0, "block size must be positive");
        BlockLayout {
            n_rows,
            tuples_per_block,
        }
    }

    /// Layout with the paper's default block size.
    pub fn with_default_block(n_rows: usize) -> Self {
        Self::new(n_rows, DEFAULT_TUPLES_PER_BLOCK)
    }

    /// Number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Tuples per block.
    pub fn tuples_per_block(&self) -> usize {
        self.tuples_per_block
    }

    /// Number of blocks (the last one may be short).
    pub fn num_blocks(&self) -> usize {
        self.n_rows.div_ceil(self.tuples_per_block)
    }

    /// The row range of block `b`.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn rows_of_block(&self, b: usize) -> Range<usize> {
        assert!(b < self.num_blocks(), "block {b} out of range");
        let start = b * self.tuples_per_block;
        let end = (start + self.tuples_per_block).min(self.n_rows);
        start..end
    }

    /// The block containing row `r`.
    pub fn block_of_row(&self, r: usize) -> usize {
        r / self.tuples_per_block
    }

    /// Number of tuples in block `b`.
    pub fn block_len(&self, b: usize) -> usize {
        self.rows_of_block(b).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let l = BlockLayout::new(100, 10);
        assert_eq!(l.num_blocks(), 10);
        assert_eq!(l.rows_of_block(0), 0..10);
        assert_eq!(l.rows_of_block(9), 90..100);
        assert_eq!(l.block_len(3), 10);
    }

    #[test]
    fn ragged_tail() {
        let l = BlockLayout::new(95, 10);
        assert_eq!(l.num_blocks(), 10);
        assert_eq!(l.rows_of_block(9), 90..95);
        assert_eq!(l.block_len(9), 5);
    }

    #[test]
    fn row_to_block_roundtrip() {
        let l = BlockLayout::new(1000, 7);
        for r in [0usize, 6, 7, 13, 999] {
            let b = l.block_of_row(r);
            assert!(l.rows_of_block(b).contains(&r));
        }
    }

    #[test]
    fn empty_table_has_no_blocks() {
        let l = BlockLayout::new(0, 10);
        assert_eq!(l.num_blocks(), 0);
    }

    #[test]
    fn default_block_size_is_600_bytes() {
        let l = BlockLayout::with_default_block(1000);
        assert_eq!(l.tuples_per_block() * 4, 600);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        BlockLayout::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        BlockLayout::new(10, 10).rows_of_block(1);
    }
}
