//! Storage-layer error types.
//!
//! The in-memory substrate is infallible by construction (all invariants
//! are asserted at build time), but real storage backends can fail: I/O
//! errors, malformed files, and corrupted (checksum-mismatched) pages all
//! surface as [`StoreError`] values rather than panics, so a damaged block
//! file never takes the process down with it.

use std::fmt;

/// Errors produced by storage backends.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O error.
    Io(std::io::Error),
    /// The file is not a valid block file (bad magic, truncated header,
    /// inconsistent geometry).
    Format(String),
    /// A write-side request violated the target's invariants (wrong row
    /// arity, out-of-dictionary codes, ragged batch columns).
    Invalid(String),
    /// A page failed its checksum: the stored data does not match what
    /// was written.
    Corrupt {
        /// Attribute whose page was corrupt.
        attr: usize,
        /// Block id of the corrupt page.
        block: usize,
        /// Human-readable detail (expected/actual checksums).
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Format(msg) => write!(f, "invalid block file: {msg}"),
            StoreError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            StoreError::Corrupt {
                attr,
                block,
                detail,
            } => write!(f, "corrupt page (attr {attr}, block {block}): {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias for storage-layer results.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StoreError::Format("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = StoreError::Corrupt {
            attr: 1,
            block: 7,
            detail: "checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("attr 1") && s.contains("block 7"));
        let e = StoreError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: StoreError = std::io::Error::other("disk fire").into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
