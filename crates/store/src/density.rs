//! Density maps: per-(value, block) tuple counts (Appendix A.1.2).
//!
//! Plain bitmap indexes answer "does block `b` contain value `v`?" but not
//! "how many tuples?". For candidates defined by *boolean predicates* over
//! several attributes, FastMatch needs per-block count estimates; the
//! paper defers to the density maps of \[48\] (NeedleTail). A density map is
//! simply the per-block histogram of an attribute; estimates for compound
//! predicates combine per-attribute counts conservatively.

use crate::block::BlockLayout;
use crate::predicate::Predicate;
use crate::table::Table;

/// Per-value, per-block tuple counts for one attribute.
#[derive(Debug, Clone)]
pub struct DensityMap {
    num_values: usize,
    num_blocks: usize,
    /// `counts[v * num_blocks + b]`
    counts: Vec<u32>,
    attr: usize,
}

impl DensityMap {
    /// Builds the density map for `attr` under the given layout.
    pub fn build(table: &Table, attr: usize, layout: &BlockLayout) -> Self {
        assert_eq!(table.n_rows(), layout.n_rows(), "layout/table mismatch");
        let num_values = table.cardinality(attr) as usize;
        let num_blocks = layout.num_blocks();
        let mut counts = vec![0u32; num_values * num_blocks];
        let col = table.column(attr);
        for b in 0..num_blocks {
            for r in layout.rows_of_block(b) {
                counts[col[r] as usize * num_blocks + b] += 1;
            }
        }
        DensityMap {
            num_values,
            num_blocks,
            counts,
            attr,
        }
    }

    /// The attribute this map indexes.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Exact number of tuples with value `v` in block `b`.
    #[inline]
    pub fn count(&self, v: u32, b: usize) -> u32 {
        debug_assert!((v as usize) < self.num_values && b < self.num_blocks);
        self.counts[v as usize * self.num_blocks + b]
    }

    /// Number of blocks indexed.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counts.len() * 4
    }
}

/// Upper-bounds the number of tuples in block `b` matching a predicate,
/// given density maps for (at least) every attribute the predicate
/// mentions. Missing maps fall back to the block length (no information).
///
/// * `Eq` — exact count from the attribute's map;
/// * `And` — minimum of the conjuncts' estimates (conservative);
/// * `Or` — sum of the disjuncts' estimates, clamped to the block length.
pub fn estimate_block_count(
    pred: &Predicate,
    maps: &[&DensityMap],
    layout: &BlockLayout,
    b: usize,
) -> u32 {
    let block_len = layout.block_len(b) as u32;
    match pred {
        Predicate::Eq { attr, value } => maps
            .iter()
            .find(|m| m.attr() == *attr)
            .map(|m| m.count(*value, b))
            .unwrap_or(block_len),
        Predicate::And(parts) => parts
            .iter()
            .map(|p| estimate_block_count(p, maps, layout, b))
            .min()
            .unwrap_or(block_len),
        Predicate::Or(parts) => parts
            .iter()
            .map(|p| estimate_block_count(p, maps, layout, b))
            .sum::<u32>()
            .min(block_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};

    fn two_attr_table() -> (Table, BlockLayout) {
        // 20 rows, blocks of 5.
        // attr0: value r/10 (0 for rows 0..10, 1 for 10..20)
        // attr1: r % 2
        let a0: Vec<u32> = (0..20).map(|r| r / 10).collect();
        let a1: Vec<u32> = (0..20).map(|r| r % 2).collect();
        let schema = Schema::new(vec![AttrDef::new("a", 2), AttrDef::new("b", 2)]);
        (Table::new(schema, vec![a0, a1]), BlockLayout::new(20, 5))
    }

    #[test]
    fn counts_are_exact() {
        let (t, l) = two_attr_table();
        let d0 = DensityMap::build(&t, 0, &l);
        assert_eq!(d0.count(0, 0), 5);
        assert_eq!(d0.count(0, 1), 5);
        assert_eq!(d0.count(0, 2), 0);
        assert_eq!(d0.count(1, 3), 5);
        let d1 = DensityMap::build(&t, 1, &l);
        // Each block holds 5 alternating-parity rows: blocks starting at an
        // even row contain 3 even-coded tuples, the others 2.
        for b in 0..4 {
            let expected = if b % 2 == 0 { 3 } else { 2 };
            assert_eq!(d1.count(0, b), expected, "block {b}");
        }
    }

    #[test]
    fn eq_estimate_uses_map() {
        let (t, l) = two_attr_table();
        let d0 = DensityMap::build(&t, 0, &l);
        let p = Predicate::Eq { attr: 0, value: 0 };
        assert_eq!(estimate_block_count(&p, &[&d0], &l, 0), 5);
        assert_eq!(estimate_block_count(&p, &[&d0], &l, 3), 0);
    }

    #[test]
    fn missing_map_falls_back_to_block_len() {
        let (_, l) = two_attr_table();
        let p = Predicate::Eq { attr: 1, value: 0 };
        assert_eq!(estimate_block_count(&p, &[], &l, 0), 5);
    }

    #[test]
    fn and_takes_min() {
        let (t, l) = two_attr_table();
        let d0 = DensityMap::build(&t, 0, &l);
        let d1 = DensityMap::build(&t, 1, &l);
        let p = Predicate::And(vec![
            Predicate::Eq { attr: 0, value: 0 },
            Predicate::Eq { attr: 1, value: 1 },
        ]);
        let est = estimate_block_count(&p, &[&d0, &d1], &l, 0);
        // block 0: 5 tuples of a=0, 2 of b=1 ⇒ min = 2; true count is 2.
        assert_eq!(est, 2);
    }

    #[test]
    fn or_sums_and_clamps() {
        let (t, l) = two_attr_table();
        let d1 = DensityMap::build(&t, 1, &l);
        let p = Predicate::Or(vec![
            Predicate::Eq { attr: 1, value: 0 },
            Predicate::Eq { attr: 1, value: 1 },
        ]);
        // sums to the full block but never beyond
        assert_eq!(estimate_block_count(&p, &[&d1], &l, 0), 5);
    }

    #[test]
    fn estimates_upper_bound_truth() {
        let (t, l) = two_attr_table();
        let d0 = DensityMap::build(&t, 0, &l);
        let d1 = DensityMap::build(&t, 1, &l);
        let preds = vec![
            Predicate::And(vec![
                Predicate::Eq { attr: 0, value: 1 },
                Predicate::Eq { attr: 1, value: 0 },
            ]),
            Predicate::Or(vec![
                Predicate::Eq { attr: 0, value: 0 },
                Predicate::Eq { attr: 1, value: 1 },
            ]),
        ];
        for p in &preds {
            for b in 0..l.num_blocks() {
                let truth = l.rows_of_block(b).filter(|&r| p.matches_row(&t, r)).count() as u32;
                let est = estimate_block_count(p, &[&d0, &d1], &l, b);
                assert!(est >= truth, "pred {p:?} block {b}: {est} < {truth}");
            }
        }
    }
}
