#!/usr/bin/env bash
# Hygiene gate: no new `unwrap()` / `expect()` in non-test library code
# under crates/engine/src and crates/store/src.
#
# This is now a thin shim over the `unwrap_gate` check of the
# fastmatch-lint static analyzer (crates/lint), which absorbed the old
# awk scan with identical semantics: same scope, same one-site-per-line
# granularity, same everything-below-`#[cfg(test)]` exemption. The 48
# frozen sites live in ci/lint_allowlist.txt as fingerprint entries
# (check|path|source-text — still line-number-free, so pure code motion
# does not churn the list; the multiset count semantics still catch a
# duplicated already-allowed line).
#
#   ci/lint_unwrap.sh            # check (CI mode)
#   ci/lint_unwrap.sh --refresh  # refreeze ALL lint findings, keeping
#                                # allowlist justifications
#
# Note --refresh regenerates the whole allowlist (all six checks), not
# just the unwrap entries: the file is one gate with one workflow.

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--refresh" ]]; then
    exec cargo run -q -p fastmatch-lint -- --refresh
fi
exec cargo run -q -p fastmatch-lint -- --deny --check unwrap_gate
