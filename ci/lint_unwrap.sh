#!/usr/bin/env bash
# Hygiene gate: no new `unwrap()` / `expect()` in non-test library code
# under crates/engine/src and crates/store/src.
#
# Every existing call site is recorded in ci/unwrap_allowlist.txt
# (sorted `path:line-text` entries, line numbers stripped so pure code
# motion does not churn the list). The gate fails when a site appears
# that is not in the allowlist, or when a file accumulates *more*
# sites than the allowlist records — shrinking is always allowed.
#
#   ci/lint_unwrap.sh            # check (CI mode)
#   ci/lint_unwrap.sh --refresh  # rewrite the allowlist from the tree
#
# Test code is exempt: everything at or below a `#[cfg(test)]` line in
# a file is ignored (the repo convention keeps unit tests in one
# trailing `mod tests`), as are `tests/` directories and doc comments.

set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=ci/unwrap_allowlist.txt
SCOPE=(crates/engine/src crates/store/src)

scan() {
    # Emit `path|trimmed-source-line` for every unwrap()/expect( call
    # site in non-test, non-comment code, sorted for stable diffs.
    find "${SCOPE[@]}" -name '*.rs' -print0 | sort -z | while IFS= read -r -d '' f; do
        awk -v file="$f" '
            /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
            /^[[:space:]]*\/\// { next }
            /\.unwrap\(\)|\.expect\(/ {
                line = $0
                sub(/^[[:space:]]+/, "", line)
                print file "|" line
            }
        ' "$f"
    done | sort
}

if [[ "${1:-}" == "--refresh" ]]; then
    scan > "$ALLOWLIST"
    echo "refreshed $ALLOWLIST: $(wc -l < "$ALLOWLIST") allowed sites"
    exit 0
fi

if [[ ! -f "$ALLOWLIST" ]]; then
    echo "missing $ALLOWLIST — run ci/lint_unwrap.sh --refresh" >&2
    exit 1
fi

current=$(mktemp)
trap 'rm -f "$current"' EXIT
scan > "$current"

status=0

# New sites: present now, absent from the allowlist.
if new_sites=$(comm -13 <(sort "$ALLOWLIST") "$current") && [[ -n "$new_sites" ]]; then
    echo "new unwrap()/expect() call sites in non-test engine/store code:" >&2
    echo "$new_sites" | sed 's/^/  /' >&2
    echo "" >&2
    echo "Handle the error (these crates return Result end to end) or," >&2
    echo "if the invariant is real, document it and refresh the" >&2
    echo "allowlist: ci/lint_unwrap.sh --refresh" >&2
    status=1
fi

# Per-file count increases: catches duplicating an already-allowed
# line (identical text would slip past the set comparison above).
counts_diff=$(diff \
    <(cut -d'|' -f1 "$ALLOWLIST" | uniq -c | awk '{print $2, $1}') \
    <(cut -d'|' -f1 "$current" | uniq -c | awk '{print $2, $1}') \
    | grep '^>' || true)
if [[ -n "$counts_diff" ]]; then
    while read -r _ file count; do
        allowed=$(grep -cF "${file}|" "$ALLOWLIST" || true)
        if (( count > allowed )); then
            echo "$file: $count unwrap/expect sites (allowlist records $allowed)" >&2
            status=1
        fi
    done <<< "$counts_diff"
fi

if (( status == 0 )); then
    echo "unwrap gate clean: $(wc -l < "$current") sites, all allowlisted"
fi
exit "$status"
