//! Cross-crate integration tests over the facade: the full pipeline from
//! synthetic data generation through storage, indexing and every executor,
//! validated against exact ground truth.

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::queries::all_queries;
use fastmatch_data::shapes::{far_pool, uniform};

fn planted_table(rows: usize, seed: u64) -> fastmatch_store::Table {
    let dists = conditional_with_planted_pool(
        50,
        &uniform(6),
        &[(0, 0.0), (3, 0.04), (7, 0.09), (12, 0.35)],
        &far_pool(6),
        0.15,
        seed ^ 0x77,
    );
    let specs = vec![
        ColumnSpec::new("z", 50, ColumnGen::PrimaryZipf { s: 1.0 }),
        ColumnSpec::new("x", 6, ColumnGen::Conditional { parent: 0, dists }),
    ];
    generate_table(&specs, rows, seed)
}

fn truth_for(table: &fastmatch_store::Table) -> GroundTruth {
    GroundTruth::from_tuples(
        table
            .column(0)
            .iter()
            .zip(table.column(1))
            .map(|(&z, &x)| (z, x)),
        50,
        6,
        uniform(6),
        Metric::L1,
    )
}

fn cfg() -> HistSimConfig {
    HistSimConfig {
        k: 3,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 15_000,
        ..HistSimConfig::default()
    }
}

#[test]
fn full_pipeline_all_executors() {
    let table = planted_table(300_000, 1);
    let truth = truth_for(&table);
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(ScanExec),
        Box::new(ScanMatchExec),
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
        Box::new(ParallelMatchExec::default()),
    ];
    for e in execs {
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(6), cfg());
        let out = e.run(&job, 5).unwrap_or_else(|_| panic!("{}", e.name()));
        assert_eq!(out.candidate_ids()[0], 0, "{}", e.name());
        assert!(
            truth.check_separation(&out.candidate_ids(), 0.1, 0.001),
            "{}",
            e.name()
        );
        assert!(
            truth.check_reconstruction(&out.output.matches, 0.1),
            "{}",
            e.name()
        );
    }
}

#[test]
fn repeated_runs_respect_delta() {
    // 20 runs with distinct seeds: the number of guarantee violations must
    // stay far below what even δ = 0.05 would permit (the bound is loose,
    // as the paper also observes — they saw zero violations).
    let table = planted_table(200_000, 2);
    let truth = truth_for(&table);
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let mut violations = 0;
    for seed in 0..20u64 {
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(6), cfg());
        let out = FastMatchExec::default().run(&job, seed).unwrap();
        let ok = truth.check_separation(&out.candidate_ids(), 0.1, 0.001)
            && truth.check_reconstruction(&out.output.matches, 0.1);
        if !ok {
            violations += 1;
        }
    }
    assert!(violations <= 2, "{violations}/20 runs violated guarantees");
}

#[test]
fn delta_d_stays_small() {
    let table = planted_table(250_000, 3);
    let truth = truth_for(&table);
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(6), cfg());
    let out = ScanMatchExec.run(&job, 9).unwrap();
    let dd = truth.delta_d(&out.output.matches, 0.001);
    assert!(dd.abs() < 0.25, "delta_d = {dd}");
}

#[test]
fn paper_workload_smoke() {
    // Every Table 3 query runs end-to-end at smoke scale and satisfies
    // its guarantees (runs degenerate to exact at this size, which is the
    // correct fallback behaviour).
    let rows = 60_000;
    let queries = all_queries();
    let mut tables = std::collections::HashMap::new();
    for q in &queries {
        tables
            .entry(q.dataset)
            .or_insert_with(|| q.dataset.generate(rows, 4));
    }
    for q in &queries {
        let table = &tables[&q.dataset];
        let z = q.z_attr(table);
        let x = q.x_attr(table);
        let (target, _) = q.resolve_target(table);
        let layout = BlockLayout::with_default_block(table.n_rows());
        let bitmap = BitmapIndex::build(table, z, &layout);
        let cfg = HistSimConfig {
            k: q.k,
            stage1_samples: 10_000,
            ..HistSimConfig::default()
        };
        let job = QueryJob::new(table, layout, &bitmap, z, x, target.clone(), cfg.clone());
        let out = ScanMatchExec
            .run(&job, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        assert_eq!(out.candidate_ids().len(), q.k, "{}", q.id);

        let vx = table.cardinality(x) as usize;
        let truth = GroundTruth::from_tuples(
            table
                .column(z)
                .iter()
                .zip(table.column(x))
                .map(|(&a, &b)| (a, b)),
            table.cardinality(z) as usize,
            vx,
            target,
            Metric::L1,
        );
        assert!(
            truth.check_separation(&out.candidate_ids(), cfg.epsilon, cfg.sigma),
            "{}: separation",
            q.id
        );
        assert!(
            truth.check_reconstruction(&out.output.matches, cfg.epsilon),
            "{}: reconstruction",
            q.id
        );
    }
}

#[test]
fn block_latency_slows_scan_proportionally() {
    let table = planted_table(100_000, 6);
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let fast_job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(6), cfg());
    let slow_job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(6), cfg())
        .with_block_latency_ns(20_000);
    let fast = ScanExec.run(&fast_job, 0).unwrap();
    let slow = ScanExec.run(&slow_job, 0).unwrap();
    let floor = std::time::Duration::from_nanos(20_000 * layout.num_blocks() as u64);
    assert!(
        slow.stats.wall >= floor,
        "{:?} < {:?}",
        slow.stats.wall,
        floor
    );
    assert!(slow.stats.wall > fast.stats.wall);
}

#[test]
fn facade_reexports_are_usable() {
    // The prelude's types compose: build a tiny run through fastmatch::core.
    use fastmatch::core::sampler::tuples_from_histograms;
    let hists = vec![vec![30u64, 30], vec![60, 0]];
    let tuples = tuples_from_histograms(&hists);
    let mut hs = fastmatch::core::HistSim::new(
        HistSimConfig {
            k: 1,
            epsilon: 0.3,
            delta: 0.1,
            sigma: 0.0,
            stage1_samples: 30,
            ..HistSimConfig::default()
        },
        2,
        2,
        120,
        &[0.5, 0.5],
    )
    .unwrap();
    let mut sampler = MemorySampler::new(tuples, 2, 0);
    let out = sampler.run(&mut hs).unwrap();
    assert_eq!(out.candidate_ids(), vec![0]);
}
