//! End-to-end smoke test for the file-backed storage path, run as its own
//! CI step: build a small synthetic dataset on disk (in `$TMPDIR`), run
//! `ParallelMatch` against the file, and require matched-set agreement
//! with the in-memory `SyncMatch` baseline.

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, uniform};
use fastmatch_store::shuffle::shuffle_table;

#[test]
fn parallel_match_over_files_agrees_with_sync_match() {
    let groups = 8usize;
    let dists = conditional_with_planted_pool(
        48,
        &uniform(groups),
        &[(0, 0.0), (4, 0.03), (9, 0.05), (17, 0.07)],
        &far_pool(groups),
        0.2,
        0x51,
    );
    let specs = vec![
        ColumnSpec::new("z", 48, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    // Shuffle before persisting, as the real preprocessing pipeline does.
    let table = shuffle_table(&generate_table(&specs, 120_000, 7), 0xfeed);
    let layout = BlockLayout::new(table.n_rows(), 150);
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    let cfg = HistSimConfig {
        k: 4,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 15_000,
        ..HistSimConfig::default()
    };

    // RAII guard: the block file is removed even when an assertion
    // panics before the end of the test.
    let scratch = TempBlockFile::new("smoke");
    let backend = FileBackend::create(scratch.path(), &table, 150)
        .expect("persisting the dataset failed")
        .with_cache_blocks(64);

    let mem_job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(groups), cfg.clone());
    let sync = SyncMatchExec.run(&mem_job, 3).expect("SyncMatch failed");

    let file_job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(groups), cfg);
    let par = ParallelMatchExec::with_shards(4)
        .run(&file_job, 3)
        .expect("ParallelMatch over files failed");

    let mut sync_ids = sync.candidate_ids();
    let mut par_ids = par.candidate_ids();
    sync_ids.sort_unstable();
    par_ids.sort_unstable();
    assert_eq!(
        par_ids, sync_ids,
        "file-backed ParallelMatch must find the matched set of the in-memory baseline"
    );
    assert!(par.stats.io.blocks_read > 0);
    assert!(
        backend.cache_stats().misses > 0,
        "the run must have performed real file reads"
    );
}
