//! Querying a persisted dataset: generate a synthetic table, shuffle and
//! persist it as a checksummed block file, then run the executor ladder
//! directly against the file through a bounded block cache — no table in
//! memory at query time.
//!
//! ```text
//! cargo run --release --example file_backed
//! ```

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::persist::persist_shuffled;
use fastmatch_data::shapes::{far_pool, uniform};

fn main() {
    // --- 1. Offline preprocessing: generate, shuffle, persist.
    let groups = 8usize;
    let dists = conditional_with_planted_pool(
        64,
        &uniform(groups),
        &[(0, 0.0), (3, 0.03), (11, 0.05), (20, 0.07)],
        &far_pool(groups),
        0.18,
        5,
    );
    let specs = vec![
        ColumnSpec::new("z", 64, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    let table = generate_table(&specs, 800_000, 11);
    let path = std::env::temp_dir().join(format!("fastmatch_example_{}.fmb", std::process::id()));
    let bytes = persist_shuffled(&table, 150, 0xd15c, &path).expect("persist failed");
    println!(
        "persisted {} rows ({:.1} MiB) to {}",
        table.n_rows(),
        bytes as f64 / (1024.0 * 1024.0),
        path.display()
    );

    // --- 2. Open the file with a bounded cache; the index is built once
    //        from the on-disk blocks (the offline half of §4.1).
    let backend = FileBackend::open(&path)
        .expect("open failed")
        .with_cache_blocks(512);
    let layout = backend.layout();
    // Reassemble the candidate column from disk to build the bitmap —
    // the original table is no longer needed from here on.
    let shuffled = {
        let mut z = Vec::with_capacity(backend.n_rows());
        let mut x = Vec::with_capacity(backend.n_rows());
        let mut buf = Vec::new();
        for b in 0..layout.num_blocks() {
            backend
                .read_block_into(b, 0, &mut buf)
                .expect("read z page");
            z.extend_from_slice(&buf);
            backend
                .read_block_into(b, 1, &mut buf)
                .expect("read x page");
            x.extend_from_slice(&buf);
        }
        Table::new(table.schema().clone(), vec![z, x])
    };
    let bitmap = BitmapIndex::build(&shuffled, 0, &layout);
    drop(table);

    let cfg = HistSimConfig {
        k: 4,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 25_000,
        ..HistSimConfig::default()
    };

    // --- 3. The executor ladder, entirely over the file backend.
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(SyncMatchExec),
        Box::new(FastMatchExec::default()),
        Box::new(ParallelMatchExec::default()),
    ];
    let mut reference: Option<Vec<u32>> = None;
    for e in execs {
        let job = QueryJob::from_backend(&backend, &bitmap, 0, 1, uniform(groups), cfg.clone());
        let out = e
            .run(&job, 17)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        println!(
            "{:<13}: {:>8.2} ms, {} blocks read / {} skipped, matches {:?}",
            e.name(),
            out.stats.wall.as_secs_f64() * 1e3,
            out.stats.io.blocks_read,
            out.stats.io.blocks_skipped,
            out.candidate_ids()
        );
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "matched sets must agree across executors"),
        }
    }
    let cs = backend.cache_stats();
    println!(
        "block cache: {} hits, {} disk reads, {} evictions",
        cs.hits, cs.misses, cs.evictions
    );
    std::fs::remove_file(&path).ok();
    println!("all file-backed executors agree");
}
