//! The paper's Example 2 (Q4): *"Where are the other locations around
//! Manhattan with similar distributions of pickup times?"*
//!
//! Uses the synthetic TAXI dataset (7641 pickup cells, heavy Zipf tail)
//! and searches for cells whose hour-of-day pickup distribution is steady
//! around the clock (24/7 hotspots: transit hubs, hospitals, nightlife
//! corridors) — demonstrating stage-1 pruning of thousands of near-empty
//! cells and block-level sampling.
//!
//! ```text
//! cargo run --release --example taxi_hotspots
//! ```

use fastmatch::prelude::*;
use fastmatch_data::datasets::DatasetId;
use fastmatch_data::shapes::uniform;

fn main() {
    let rows = 2_000_000;
    println!("generating synthetic TAXI dataset ({rows} rows)…");
    let table = DatasetId::Taxi.generate(rows, 5);
    let z = table.attr_index("Location").expect("Location attr");
    let x = table.attr_index("HourOfDay").expect("HourOfDay attr");
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, z, &layout);

    // Round-the-clock signature: pickups spread uniformly over the day.
    let target = uniform(24);

    let cfg = HistSimConfig {
        k: 5,
        epsilon: 0.12,
        delta: 0.05,
        sigma: 0.0008,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    };
    let job = QueryJob::new(&table, layout, &bitmap, z, x, target, cfg);
    let out = FastMatchExec::default()
        .run(&job, 17)
        .expect("query failed");

    println!(
        "\npruned {} of 7641 pickup cells as too rare (σ = 0.0008)",
        out.stats.pruned
    );
    println!("top-5 round-the-clock pickup cells:");
    for m in &out.output.matches {
        let hist = m.histogram.counts();
        let night: u64 = hist[2..5].iter().sum();
        println!(
            "  cell {:>4}  distance {:.3}  {}/{} sampled pickups between 2am and 5am",
            m.candidate,
            m.distance,
            night,
            m.histogram.total()
        );
    }
    println!(
        "\nI/O: read {} of {} blocks ({:.1}%), skipped {}, {:.1} ms",
        out.stats.io.blocks_read,
        layout.num_blocks(),
        100.0 * out.stats.io.blocks_read as f64 / layout.num_blocks() as f64,
        out.stats.io.blocks_skipped,
        out.stats.wall.as_secs_f64() * 1e3
    );
}
