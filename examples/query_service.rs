//! Serving many concurrent queries from one shared file-backed store:
//! persist a synthetic dataset once, then push a mixed batch of top-k
//! histogram-matching queries through `QueryService` — one bounded
//! worker pool, one shared block cache — with progressive results, a
//! cancelled query and a deadline-bounded one in the mix.
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use std::time::Duration;

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::persist::persist_shuffled;
use fastmatch_data::shapes::{far_pool, uniform};

fn main() {
    // --- 1. Offline: generate, shuffle, persist one shared dataset.
    let groups = 8usize;
    let dists = conditional_with_planted_pool(
        64,
        &uniform(groups),
        &[(0, 0.0), (3, 0.03), (11, 0.05), (20, 0.07)],
        &far_pool(groups),
        0.18,
        5,
    );
    let specs = vec![
        ColumnSpec::new("z", 64, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    let table = generate_table(&specs, 600_000, 11);
    let scratch = TempBlockFile::new("service_example");
    persist_shuffled(&table, 150, 0xd15c, scratch.path()).expect("persist failed");

    // One backend, one deliberately small cache: this is the shared
    // resource every admitted query contends for.
    let backend = FileBackend::open(scratch.path())
        .expect("open failed")
        .with_cache_blocks(512);
    let layout = backend.layout();
    let shuffled = {
        let mut z = Vec::with_capacity(backend.n_rows());
        let mut x = Vec::with_capacity(backend.n_rows());
        let mut buf = Vec::new();
        for b in 0..layout.num_blocks() {
            backend.read_block_into(b, 0, &mut buf).expect("z page");
            z.extend_from_slice(&buf);
            backend.read_block_into(b, 1, &mut buf).expect("x page");
            x.extend_from_slice(&buf);
        }
        Table::new(table.schema().clone(), vec![z, x])
    };
    let bitmap = BitmapIndex::build(&shuffled, 0, &layout);
    drop((table, shuffled));

    let cfg = HistSimConfig {
        k: 4,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 25_000,
        ..HistSimConfig::default()
    };

    // --- 2. Online: a service session over the shared backend.
    let service_cfg = ServiceConfig::default();
    println!(
        "service: {} workers, {} shards/query, quantum {} blocks",
        service_cfg.workers, service_cfg.shards_per_query, service_cfg.quantum_blocks
    );
    QueryService::serve(&backend, service_cfg, |svc| {
        // Eight ordinary queries with distinct seeds…
        let handles: Vec<QueryHandle> = (0..8)
            .map(|i| {
                svc.submit(
                    QueryRequest::new(&bitmap, 0, 1, uniform(groups), cfg.clone())
                        .with_seed(100 + i),
                )
                .expect("admission failed")
            })
            .collect();
        // …plus one the client cancels and one with a hopeless deadline.
        let cancelled = svc
            .submit(QueryRequest::new(&bitmap, 0, 1, uniform(groups), cfg.clone()).with_seed(900))
            .expect("admission failed");
        cancelled.cancel();
        let deadlined = svc
            .submit(
                QueryRequest::new(&bitmap, 0, 1, uniform(groups), cfg.clone())
                    .with_seed(901)
                    .with_deadline(Duration::ZERO),
            )
            .expect("admission failed");

        // Progressive peek while the batch is in flight.
        let p = handles[0].progress();
        println!(
            "query 0 in flight: phase {:?}, guarantee {:?}, preview {:?}",
            p.phase, p.guarantee, p.current_topk
        );

        let mut reference: Option<Vec<u32>> = None;
        for (i, h) in handles.iter().enumerate() {
            match h.wait() {
                QueryOutcome::Finished(out) => {
                    let mut ids = out.candidate_ids();
                    println!(
                        "query {i}: {:?} in {:>7.2} ms — {} blocks read, cache hit rate {:.0}%",
                        ids,
                        out.stats.wall.as_secs_f64() * 1e3,
                        out.stats.io.blocks_read,
                        out.stats.io.cache_hit_rate() * 100.0
                    );
                    ids.sort_unstable();
                    match &reference {
                        None => reference = Some(ids),
                        Some(r) => assert_eq!(&ids, r, "concurrent queries must agree"),
                    }
                }
                other => panic!("query {i} did not finish: {other:?}"),
            }
        }
        match cancelled.wait() {
            QueryOutcome::Cancelled => println!("cancelled query resolved as Cancelled"),
            QueryOutcome::Finished(_) => {
                println!("cancelled query finished before the flag landed")
            }
            other => panic!("unexpected outcome for cancelled query: {other:?}"),
        }
        match deadlined.wait() {
            QueryOutcome::DeadlineExpired => println!("deadline query resolved as DeadlineExpired"),
            other => panic!("unexpected outcome for deadline query: {other:?}"),
        }
    });

    let cs = backend.cache_stats();
    println!(
        "shared cache after the batch: {} hits, {} disk reads, {} evictions, pressure {}",
        cs.hits, cs.misses, cs.evictions, cs.pressure
    );
    println!("all concurrent queries agree on the matched set");
}
