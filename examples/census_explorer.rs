//! The paper's running example (§1, Example 1 / Q1): *"Which countries
//! have similar distributions of wealth to that of Greece?"*
//!
//! Builds a synthetic census of (country, income-bracket) tuples with a
//! handful of countries planted near Greece's income shape, then compares
//! the exact scan answer with FastMatch's sampled answer and validates
//! both guarantees against ground truth.
//!
//! ```text
//! cargo run --release --example census_explorer
//! ```

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, geometric, normalize};

const COUNTRIES: usize = 195;
const BRACKETS: usize = 7;
/// Greece sits among the mid-size countries (Zipf rank 8).
const GREECE: u32 = 8;

fn main() {
    // Greece's income-bracket shape: geometric-ish decay over 7 brackets
    // with a bump in the middle class.
    let mut greece_shape = geometric(BRACKETS, 0.72);
    greece_shape[2] *= 1.6;
    greece_shape[3] *= 1.4;
    normalize(&mut greece_shape);

    // Plant a few countries at graded distances from Greece; everyone
    // else gets a distinctly different wealth distribution.
    // Matches are planted on reasonably populous countries so that the
    // reconstruction stage needs only a fraction of the data (at this
    // scale, a top-k member rarer than ~0.8% forces a full pass — see
    // EXPERIMENTS.md on scale effects).
    let planted = [
        (GREECE, 0.0),
        (14, 0.03), // "Portugal"
        (20, 0.06), // "Croatia"
        (3, 0.10),  // "Uruguay"
        (12, 0.35), // past the boundary
    ];
    let dists = conditional_with_planted_pool(
        COUNTRIES,
        &greece_shape,
        &planted,
        &far_pool(BRACKETS),
        0.12,
        11,
    );
    let specs = vec![
        ColumnSpec::new(
            "country",
            COUNTRIES as u32,
            ColumnGen::PrimaryZipf { s: 1.0 },
        ),
        ColumnSpec::new(
            "income_bracket",
            BRACKETS as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    let table = generate_table(&specs, 2_000_000, 3);
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);

    // The visual target is Greece's own exact histogram (what the analyst
    // sees on screen): SELECT income_bracket, COUNT(*) WHERE country =
    // 'Greece' GROUP BY income_bracket.
    let ct = table.crosstab(0, 1);
    let row = &ct[GREECE as usize * BRACKETS..(GREECE as usize + 1) * BRACKETS];
    let total: u64 = row.iter().sum();
    let target: Vec<f64> = row.iter().map(|&c| c as f64 / total as f64).collect();
    println!("target (Greece) histogram: {row:?}");

    let cfg = HistSimConfig {
        k: 4,
        epsilon: 0.08,
        delta: 0.05,
        sigma: 0.0008,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    };

    // Exact answer.
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, target.clone(), cfg.clone());
    let exact = ScanExec.run(&job, 0).expect("scan failed");
    println!(
        "\nexact top-4 (full scan, {:.1} ms): {:?}",
        exact.stats.wall.as_secs_f64() * 1e3,
        exact.candidate_ids()
    );

    // Sampled answer.
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, target.clone(), cfg.clone());
    let fast = FastMatchExec::default()
        .run(&job, 99)
        .expect("fastmatch failed");
    println!(
        "fastmatch top-4 ({:.1} ms, {:.1}% of blocks read): {:?}",
        fast.stats.wall.as_secs_f64() * 1e3,
        100.0 * fast.stats.io.blocks_read as f64 / layout.num_blocks() as f64,
        fast.candidate_ids()
    );
    for m in &fast.output.matches {
        println!(
            "  country {:>3}  distance {:.4}  from {} sampled tuples",
            m.candidate, m.distance, m.samples
        );
    }

    // Validate the guarantees against ground truth.
    let truth = GroundTruth::from_tuples(
        table
            .column(0)
            .iter()
            .zip(table.column(1))
            .map(|(&z, &x)| (z, x)),
        COUNTRIES,
        BRACKETS,
        target,
        Metric::L1,
    );
    let sep = truth.check_separation(&fast.candidate_ids(), cfg.epsilon, cfg.sigma);
    let rec = truth.check_reconstruction(&fast.output.matches, cfg.epsilon);
    println!("\nseparation guarantee held: {sep}; reconstruction guarantee held: {rec}");
    assert!(sep && rec);
    assert_eq!(fast.candidate_ids()[0], GREECE);
}
