//! Quickstart: find the top-k histograms closest to a target, end to end.
//!
//! Builds a small synthetic table (candidate attribute `z`, grouping
//! attribute `x`), a block layout and bitmap index, then runs the full
//! FastMatch executor and prints the matches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, uniform};

fn main() {
    // --- 1. Data: 40 candidates over 12 groups; three candidates planted
    //        near the uniform target, the rest far away.
    let groups = 12usize;
    let dists = conditional_with_planted_pool(
        40,
        &uniform(groups),
        &[(0, 0.0), (4, 0.05), (9, 0.10)],
        &far_pool(groups),
        0.15,
        7,
    );
    let specs = vec![
        ColumnSpec::new("z", 40, ColumnGen::PrimaryZipf { s: 0.8 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    let table = generate_table(&specs, 400_000, 1);
    println!(
        "table: {} rows x {} attrs ({:.1} MiB)",
        table.n_rows(),
        table.schema().len(),
        table.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // --- 2. Storage: block layout + bitmap index on the candidate attribute.
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    println!(
        "layout: {} blocks of {} tuples; bitmap index {:.1} KiB",
        layout.num_blocks(),
        layout.tuples_per_block(),
        bitmap.size_bytes() as f64 / 1024.0
    );

    // --- 3. Query: top-3 closest to the uniform target with the paper's
    //        guarantees (ε = 0.1, δ = 0.05, σ = 0.001).
    let cfg = HistSimConfig {
        k: 3,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 20_000,
        ..HistSimConfig::default()
    };
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(groups), cfg);
    let out = FastMatchExec::default()
        .run(&job, 42)
        .expect("query failed");

    // --- 4. Results.
    println!("\ntop-3 matches (closest first):");
    for m in &out.output.matches {
        println!(
            "  candidate {:>2}  l1-distance {:.4}  ({} samples backing the estimate)",
            m.candidate, m.distance, m.samples
        );
    }
    let s = &out.stats;
    println!(
        "\nread {} of {} blocks ({:.1}%), skipped {}, {} stage-2 rounds, {:.1} ms",
        s.io.blocks_read,
        layout.num_blocks(),
        100.0 * s.io.blocks_read as f64 / layout.num_blocks() as f64,
        s.io.blocks_skipped,
        s.stage2_rounds,
        s.wall.as_secs_f64() * 1e3
    );
    assert_eq!(out.candidate_ids()[0], 0, "planted best match must win");
}
