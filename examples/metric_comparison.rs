//! §2.1's metric discussion, executable: why normalized ℓ1 rather than
//! ℓ2 or KL-divergence, and why normalization at all.
//!
//! ```text
//! cargo run --release --example metric_comparison
//! ```

use fastmatch::prelude::*;

fn main() {
    // --- Why normalize (Figure 3): a small country with the same wealth
    //     *shape* as a big one is identical after normalization.
    let big = Histogram::from_counts(vec![40_000, 80_000, 120_000, 60_000, 20_000]);
    let small = Histogram::from_counts(vec![400, 800, 1_200, 600, 200]);
    let p_big = big.normalized().unwrap();
    let p_small = small.normalized().unwrap();
    println!(
        "pre-normalization count difference: huge (totals {} vs {})",
        big.total(),
        small.total()
    );
    println!(
        "post-normalization l1 distance: {:.6}\n",
        Metric::L1.eval(&p_big, &p_small)
    );

    // --- Why not l2 (Figure 2's argument): with mass spread across many
    //     bins, two *disjoint* distributions look close in l2.
    let n = 100;
    let mut p = vec![0.0; 2 * n];
    let mut q = vec![0.0; 2 * n];
    for i in 0..n {
        p[i] = 1.0 / n as f64;
        q[n + i] = 1.0 / n as f64;
    }
    println!("two distributions with fully disjoint support over 200 bins:");
    println!(
        "  l1 = {:.4} (maximal — they share nothing)",
        Metric::L1.eval(&p, &q)
    );
    println!(
        "  l2 = {:.4} (looks deceptively close)\n",
        Metric::L2.eval(&p, &q)
    );

    // --- Why not KL: a single empty bin in the candidate makes KL infinite
    //     even when the histograms are visually near-identical.
    let target = [0.30, 0.25, 0.20, 0.15, 0.10];
    let candidate = [0.32, 0.26, 0.21, 0.21, 0.0]; // visually close, one empty bin
    println!("near-identical histograms, one empty bin in the candidate:");
    println!("  l1 = {:.4}", Metric::L1.eval(&target, &candidate));
    println!(
        "  KL(target ‖ candidate) = {:?}\n",
        Metric::KlDivergence.eval(&target, &candidate)
    );

    // --- l1 corresponds to total variation distance (×2).
    let a = [0.7, 0.2, 0.1];
    let b = [0.4, 0.4, 0.2];
    println!(
        "l1 = {:.4} is exactly twice total-variation = {:.4}",
        Metric::L1.eval(&a, &b),
        Metric::TotalVariation.eval(&a, &b)
    );
}
