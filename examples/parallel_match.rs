//! Multi-core matching: the sharded `ParallelMatch` executor against the
//! single-core `SyncMatch` baseline on the same query.
//!
//! ```text
//! cargo run --release --example parallel_match
//! ```

use fastmatch::prelude::*;
use fastmatch_data::gen::{conditional_with_planted_pool, generate_table, ColumnGen, ColumnSpec};
use fastmatch_data::shapes::{far_pool, uniform};

fn main() {
    // --- 1. Data: 80 candidates over 10 groups, four planted near the
    //        uniform target, a heavy Zipf size skew.
    let groups = 10usize;
    let dists = conditional_with_planted_pool(
        80,
        &uniform(groups),
        &[(0, 0.0), (5, 0.04), (12, 0.07), (21, 0.09)],
        &far_pool(groups),
        0.15,
        3,
    );
    let specs = vec![
        ColumnSpec::new("z", 80, ColumnGen::PrimaryZipf { s: 1.1 }),
        ColumnSpec::new(
            "x",
            groups as u32,
            ColumnGen::Conditional { parent: 0, dists },
        ),
    ];
    let table = generate_table(&specs, 1_200_000, 9);
    let layout = BlockLayout::with_default_block(table.n_rows());
    let bitmap = BitmapIndex::build(&table, 0, &layout);
    println!(
        "table: {} rows, {} blocks; query: top-4 closest to uniform ({} core(s) available)",
        table.n_rows(),
        layout.num_blocks(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let cfg = HistSimConfig {
        k: 4,
        epsilon: 0.1,
        delta: 0.05,
        sigma: 0.001,
        stage1_samples: 25_000,
        ..HistSimConfig::default()
    };

    // --- 2. Baseline: synchronous single-core AnyActive.
    let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(groups), cfg.clone());
    let sync = SyncMatchExec.run(&job, 7).expect("SyncMatch failed");
    let mut sync_ids = sync.candidate_ids();
    println!(
        "\nSyncMatch      : {:>8.2} ms, {} blocks read, matches {:?}",
        sync.stats.wall.as_secs_f64() * 1e3,
        sync.stats.io.blocks_read,
        sync_ids
    );

    // --- 3. Sharded ingestion at increasing core counts. Same demand
    //        protocol, same guarantees; only the ingestion topology
    //        changes.
    for shards in [1usize, 2, 4, 8] {
        let job = QueryJob::new(&table, layout, &bitmap, 0, 1, uniform(groups), cfg.clone());
        let out = ParallelMatchExec::with_shards(shards)
            .run(&job, 7)
            .expect("ParallelMatch failed");
        println!(
            "ParallelMatch/{shards}: {:>8.2} ms, {} blocks read, matches {:?}",
            out.stats.wall.as_secs_f64() * 1e3,
            out.stats.io.blocks_read,
            out.candidate_ids()
        );
        let mut ids = out.candidate_ids();
        ids.sort_unstable();
        sync_ids.sort_unstable();
        assert_eq!(
            ids, sync_ids,
            "sharded ingestion must find the same matched set"
        );
    }
    println!("\nall shard counts agree with the single-core baseline");
}
