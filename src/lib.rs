//! # fastmatch
//!
//! End-to-end reproduction of **FastMatch / HistSim** — *"Adaptive
//! Sampling for Rapidly Matching Histograms"* (Macke, Zhang, Huang,
//! Parameswaran; VLDB 2018).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`fastmatch-core`) — the HistSim algorithm and its
//!   statistical machinery;
//! * [`store`] (`fastmatch-store`) — the columnar block storage substrate
//!   with bitmap indexes and pluggable backends (in-memory tables or
//!   checksummed on-disk block files behind a bounded block cache);
//! * [`data`] (`fastmatch-data`) — synthetic evaluation datasets and the
//!   Table 3 query workload;
//! * [`engine`] (`fastmatch-engine`) — the `Scan` / `ScanMatch` /
//!   `SyncMatch` / `FastMatch` / `ParallelMatch` executors, plus the
//!   multi-query `QueryService` scheduler (many concurrent queries over
//!   one shared backend, with progressive results, cancellation and
//!   deadlines).
//!
//! ## Quickstart
//!
//! ```
//! use fastmatch::prelude::*;
//!
//! // Histograms of 4 groups for 3 candidates; candidate 1 matches the
//! // uniform target.
//! let hists = vec![
//!     vec![900u64, 100, 0, 0],
//!     vec![250, 250, 250, 250],
//!     vec![0, 0, 500, 500],
//! ];
//! let tuples = tuples_from_histograms(&hists);
//! let n = tuples.len() as u64;
//! let cfg = HistSimConfig {
//!     k: 1,
//!     epsilon: 0.2,
//!     delta: 0.05,
//!     sigma: 0.0,
//!     stage1_samples: 100,
//!     ..HistSimConfig::default()
//! };
//! let mut hs = HistSim::new(cfg, 3, 4, n, &[0.25; 4]).unwrap();
//! let mut sampler = MemorySampler::new(tuples, 3, 42);
//! let out = sampler.run(&mut hs).unwrap();
//! assert_eq!(out.candidate_ids(), vec![1]);
//! ```
//!
//! See `examples/` for realistic end-to-end scenarios over the storage
//! engine, and `DESIGN.md` / `EXPERIMENTS.md` for the reproduction notes.

#![forbid(unsafe_code)]

pub use fastmatch_core as core;
pub use fastmatch_data as data;
pub use fastmatch_engine as engine;
pub use fastmatch_store as store;

/// One-stop imports for applications.
pub mod prelude {
    pub use fastmatch_core::histsim::{HistSim, HistSimConfig, HistSimOutput, MatchedCandidate};
    pub use fastmatch_core::sampler::{tuples_from_histograms, MemorySampler, Sample};
    pub use fastmatch_core::{guarantees::GroundTruth, Histogram, Metric};
    pub use fastmatch_engine::exec::{
        Executor, FastMatchExec, ParallelMatchExec, ScanExec, ScanMatchExec, SyncMatchExec,
    };
    pub use fastmatch_engine::query::QueryJob;
    pub use fastmatch_engine::result::MatchOutput;
    pub use fastmatch_engine::service::{
        GuaranteeState, QueryHandle, QueryOutcome, QueryProgress, QueryRequest, QueryService,
        ServiceConfig, ServiceError, SnapshotRequest,
    };
    pub use fastmatch_store::{
        BitmapIndex, BlockLayout, FileBackend, LiveStats, LiveTable, LiveTableConfig, MemBackend,
        Snapshot, StorageBackend, StoreError, Table, TempBlockDir, TempBlockFile, ZoneMap,
    };
}
